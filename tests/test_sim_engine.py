"""Tests for the discrete-event kernel and its primitives."""

import pytest

from repro.sim import Barrier, CreditStore, Engine, Server, SimulationError


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.at(10, lambda: order.append("b"))
        engine.at(5, lambda: order.append("a"))
        engine.at(20, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 20

    def test_same_time_events_fifo(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.at(7, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.after(3, lambda: times.append(engine.now))
        engine.run()
        assert times == [3]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            seen.append(engine.now)
            engine.after(5, lambda: seen.append(engine.now))

        engine.at(2, outer)
        engine.run()
        assert seen == [2, 7]

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.at(100, lambda: fired.append(True))
        engine.run(until=50)
        assert not fired
        assert engine.now == 50
        engine.run()
        assert fired

    def test_run_until_advances_clock_when_queue_drains(self):
        engine = Engine()
        engine.at(5, lambda: None)
        assert engine.run(until=50) == 50
        assert engine.now == 50

    def test_back_to_back_bounded_runs_keep_consistent_clock(self):
        engine = Engine()
        seen = []
        engine.at(10, lambda: seen.append(engine.now))
        assert engine.run(until=100) == 100
        # a second bounded run on the drained queue still lands on its bound
        assert engine.run(until=250) == 250
        engine.after(5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [10, 255]

    def test_run_with_past_bound_never_moves_clock_backward(self):
        engine = Engine()
        engine.at(60, lambda: None)
        assert engine.run(until=50) == 50
        # a stale (smaller) bound is a no-op, not a clock rewind
        assert engine.run(until=40) == 50
        assert engine.now == 50
        engine.run()
        assert engine.now == 60

    def test_max_events_with_queue_left_does_not_jump_to_until(self):
        engine = Engine()
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        engine.run(until=100, max_events=1)
        assert engine.now == 1

    def test_engine_uses_slots(self):
        assert not hasattr(Engine(), "__dict__")

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(10, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.at(5, lambda: None)
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_event_counter(self):
        engine = Engine()
        for i in range(5):
            engine.at(i, lambda: None)
        engine.run()
        assert engine.events_processed == 5
        assert engine.empty()


class TestEngineEdgeSemantics:
    """Bounded-run, same-cycle-batch and re-entrancy contracts of run()."""

    def test_max_events_mid_batch_leaves_consistent_clock_and_order(self):
        engine = Engine()
        order = []
        for tag in ("a", "b", "c"):
            engine.at(7, lambda t=tag: order.append(t))
        engine.at(9, lambda: order.append("late"))
        # stop in the middle of the same-cycle batch at t=7
        engine.run(max_events=2)
        assert order == ["a", "b"]
        assert engine.now == 7
        assert not engine.empty()
        # the unprocessed tail resumes exactly where the run stopped, FIFO
        engine.run()
        assert order == ["a", "b", "c", "late"]
        assert engine.now == 9

    def test_max_events_truncation_keeps_same_cycle_continuations(self):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.after(0, lambda: order.append("chained"))

        engine.at(3, first)
        engine.at(3, lambda: order.append("second"))
        engine.run(max_events=1)
        # only the first event ran; both the pre-scheduled same-cycle event
        # and the continuation it appended are still pending, in order
        assert order == ["first"]
        assert engine.now == 3
        engine.run()
        assert order == ["first", "second", "chained"]

    def test_same_cycle_events_scheduled_during_dispatch_run_fifo(self):
        engine = Engine()
        order = []

        def outer(tag):
            order.append(tag)
            engine.after(0, lambda: order.append(f"{tag}-after0"))
            engine.at(engine.now, lambda: order.append(f"{tag}-atnow"))

        engine.at(5, lambda: outer("x"))
        engine.at(5, lambda: outer("y"))
        engine.run()
        # continuations land at the tail of the in-flight batch, in
        # scheduling order, after all previously queued same-cycle events
        assert order == [
            "x", "y", "x-after0", "x-atnow", "y-after0", "y-atnow",
        ]
        assert engine.now == 5

    def test_reentrant_run_raises(self):
        engine = Engine()
        errors = []

        def reenter():
            try:
                engine.run()
            except SimulationError as error:
                errors.append(str(error))

        engine.at(1, reenter)
        engine.run()
        assert len(errors) == 1
        assert "re-entrant" in errors[0]
        # the outer run survives the rejected re-entry
        engine.at(2, lambda: None)
        assert engine.run() == 2

    def test_truncated_run_then_until_bound_does_not_skip_events(self):
        engine = Engine()
        seen = []
        engine.at(4, lambda: seen.append("a"))
        engine.at(4, lambda: seen.append("b"))
        engine.run(max_events=1)
        assert engine.now == 4 and seen == ["a"]
        # a bounded run past the truncation point first drains the tail
        engine.run(until=10)
        assert seen == ["a", "b"]
        assert engine.now == 10


class TestServer:
    def test_single_capacity_serialises(self):
        engine = Engine()
        server = Server(engine, "s", capacity=1)
        done = []
        server.submit(10, lambda: done.append(engine.now))
        server.submit(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [10, 20]
        assert server.jobs_served == 2
        assert server.utilization_time == 20

    def test_multi_capacity_overlaps(self):
        engine = Engine()
        server = Server(engine, "s", capacity=2)
        done = []
        for _ in range(4):
            server.submit(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [10, 10, 20, 20]

    def test_queue_statistics(self):
        engine = Engine()
        server = Server(engine, "s", capacity=1)
        server.submit(5, lambda: None)
        server.submit(5, lambda: None)
        assert server.queue_length == 1
        assert server.in_service == 1
        engine.run()
        assert server.total_wait == 5

    def test_zero_duration_job(self):
        engine = Engine()
        server = Server(engine, "s")
        done = []
        server.submit(0, lambda: done.append(engine.now))
        engine.run()
        assert done == [0]

    def test_invalid_parameters(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Server(engine, "s", capacity=0)
        with pytest.raises(SimulationError):
            Server(engine, "s").submit(-1, lambda: None)

    def test_server_and_credit_store_use_slots(self):
        engine = Engine()
        assert not hasattr(Server(engine, "s"), "__dict__")
        assert not hasattr(CreditStore(engine, "c"), "__dict__")

    def test_occupy_vacate_matches_submit_statistics(self):
        """Direct occupancy (grouped transfers) accounts like a zero-wait job."""
        engine = Engine()
        via_submit = Server(engine, "a")
        via_occupy = Server(engine, "b")
        via_submit.submit(10, lambda: None)
        via_occupy.occupy(10)
        engine.after(10, via_occupy.vacate)
        engine.run()
        for field in ("jobs_served", "total_wait", "total_service"):
            assert getattr(via_submit, field) == getattr(via_occupy, field)
        assert via_submit.utilization_time == via_occupy.utilization_time

    def test_vacate_starts_queued_jobs(self):
        engine = Engine()
        server = Server(engine, "s", capacity=1)
        done = []
        server.occupy(5)
        server.submit(3, lambda: done.append(engine.now))
        assert server.queue_length == 1
        engine.after(5, server.vacate)
        engine.run()
        assert done == [8]
        assert server.total_wait == 5


class TestCreditStore:
    def test_acquire_available_credit_immediately(self):
        engine = Engine()
        store = CreditStore(engine, "c", initial=2)
        granted = []
        store.acquire(lambda: granted.append(engine.now))
        assert granted == [0]
        assert store.available == 1

    def test_acquire_blocks_until_release(self):
        engine = Engine()
        store = CreditStore(engine, "c", initial=1)
        granted = []
        store.acquire(lambda: granted.append("a"))
        store.acquire(lambda: granted.append("b"))
        assert granted == ["a"]
        assert store.waiters == 1
        engine.at(10, store.release)
        engine.run()
        assert granted == ["a", "b"]
        assert store.total_wait == 10

    def test_fifo_wakeup_order(self):
        engine = Engine()
        store = CreditStore(engine, "c", initial=0)
        granted = []
        for tag in ("x", "y", "z"):
            store.acquire(lambda t=tag: granted.append(t))
        store.release(2)
        assert granted == ["x", "y"]
        store.release()
        assert granted == ["x", "y", "z"]

    def test_negative_release_rejected(self):
        engine = Engine()
        store = CreditStore(engine, "c", initial=1)
        with pytest.raises(SimulationError):
            store.release(-1)


class TestSlotsAndAccounting:
    def test_barrier_uses_slots(self):
        assert not hasattr(Barrier(1, lambda: None), "__dict__")

    def test_credit_store_wait_accounting_is_inline(self):
        """Wait times ride the waiter entries — no parallel bookkeeping deque."""
        engine = Engine()
        store = CreditStore(engine, "c", initial=0)
        assert not hasattr(store, "_wait_since")
        granted = []
        store.acquire(lambda: granted.append(engine.now))
        store.acquire(lambda: granted.append(engine.now))
        engine.at(4, lambda: store.release())
        engine.at(9, lambda: store.release())
        engine.run()
        assert granted == [4, 9]
        assert store.total_wait == 4 + 9


class TestBarrier:
    def test_fires_after_count_arrivals(self):
        fired = []
        barrier = Barrier(3, lambda: fired.append(True))
        barrier.arrive()
        barrier.arrive()
        assert not fired
        barrier.arrive()
        assert fired and barrier.done

    def test_zero_count_fires_immediately(self):
        fired = []
        Barrier(0, lambda: fired.append(True))
        assert fired

    def test_extra_arrival_rejected(self):
        barrier = Barrier(1, lambda: None)
        barrier.arrive()
        with pytest.raises(SimulationError):
            barrier.arrive()
