"""Tests for the analysis layer and the high-level runner (paper-facing results)."""

import pytest

from repro import ArchConfig, OptimizationLevel, models, run_inference, run_optimization_study
from repro.analysis import (
    breakdown_summary,
    cluster_breakdown,
    compute_energy,
    compute_metrics,
    compute_waterfall,
    format_breakdown,
    format_comparison,
    format_group_efficiency,
    format_metrics,
    group_area_efficiency,
)
from repro.core import lower_to_workload
from repro.runner import format_study
from repro.sim import simulate


class TestMetrics:
    def test_headline_metrics_positive(self, resnet_final_result, resnet_final_mapping):
        metrics = compute_metrics(resnet_final_result, resnet_final_mapping)
        assert metrics.throughput_tops > 1.0
        assert metrics.images_per_second > 100
        assert metrics.energy_mj > 0
        assert metrics.power_w > 0
        assert metrics.energy_efficiency_tops_w > 0
        assert metrics.area_efficiency_gops_mm2 > 0
        assert metrics.used_clusters <= metrics.total_clusters

    def test_headline_metrics_in_paper_ballpark(self, resnet_final_result, resnet_final_mapping):
        """The final mapping should land in the same decade as the paper:
        20.2 TOPS, 3303 img/s, 42 GOPS/mm2, 6.5 TOPS/W."""
        metrics = compute_metrics(resnet_final_result, resnet_final_mapping)
        assert 10 < metrics.throughput_tops < 60
        assert 1500 < metrics.images_per_second < 12000
        assert 20 < metrics.area_efficiency_gops_mm2 < 130
        assert 1.5 < metrics.energy_efficiency_tops_w < 30

    def test_energy_breakdown_sums(self, resnet_final_result, resnet_final_mapping):
        energy = compute_energy(resnet_final_result, resnet_final_mapping)
        parts = energy.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))
        assert parts["analog"] > 0

    def test_as_dict_round_trip(self, resnet_final_result, resnet_final_mapping):
        metrics = compute_metrics(resnet_final_result, resnet_final_mapping)
        flat = metrics.as_dict()
        assert flat["throughput_tops"] == pytest.approx(metrics.throughput_tops)


class TestBreakdown:
    def test_rows_cover_used_clusters(self, resnet_final_result, resnet_final_mapping):
        rows = cluster_breakdown(resnet_final_result, resnet_final_mapping)
        assert len(rows) >= resnet_final_mapping.n_used_clusters - 4
        makespan = resnet_final_result.makespan_cycles
        for row in rows[:50]:
            assert row.total == makespan
            assert row.sleep >= 0

    def test_mix_of_analog_and_digital_bound_clusters(self, resnet_final_result, resnet_final_mapping):
        rows = cluster_breakdown(resnet_final_result, resnet_final_mapping)
        bound = {row.analog_bound for row in rows}
        assert bound == {True, False}

    def test_summary_and_formatting(self, resnet_final_result, resnet_final_mapping):
        rows = cluster_breakdown(resnet_final_result, resnet_final_mapping)
        summary = breakdown_summary(rows)
        assert 0 < summary["mean_busy_fraction"] <= 1
        assert 0 < summary["analog_bound_fraction"] < 1
        text = format_breakdown(rows)
        assert "cluster" in text

    def test_empty_breakdown(self):
        assert breakdown_summary([])["n_clusters"] == 0


class TestWaterfall:
    def test_waterfall_monotonically_decreasing(self, resnet_final_mapping, resnet_final_result):
        waterfall = compute_waterfall(resnet_final_mapping, full_result=resnet_final_result)
        tops = [step.throughput_tops for step in waterfall.steps]
        assert tops == sorted(tops, reverse=True)
        assert waterfall.steps[0].name == "ideal"
        assert waterfall.total_degradation > 5

    def test_waterfall_step_lookup_and_format(self, resnet_final_mapping, resnet_final_result):
        waterfall = compute_waterfall(resnet_final_mapping, full_result=resnet_final_result)
        ideal = waterfall.step("ideal")
        assert ideal.throughput_tops == pytest.approx(resnet_final_mapping.arch.peak_tops)
        assert "communication" in waterfall.format()
        with pytest.raises(KeyError):
            waterfall.step("unknown")

    def test_global_mapping_step_matches_cluster_usage(self, resnet_final_mapping, resnet_final_result):
        waterfall = compute_waterfall(resnet_final_mapping, full_result=resnet_final_result)
        expected = resnet_final_mapping.arch.peak_tops * resnet_final_mapping.global_mapping_efficiency
        assert waterfall.step("global mapping").throughput_tops == pytest.approx(expected)


class TestGroupEfficiency:
    def test_groups_cover_resnet_shapes(self, resnet_final_mapping, paper_arch):
        compute_only = simulate(
            paper_arch, lower_to_workload(resnet_final_mapping, zero_communication=True)
        )
        rows = group_area_efficiency(resnet_final_mapping, compute_only)
        shapes = {row.ifm_shape for row in rows}
        assert "8x8x512" in shapes
        assert all(row.area_efficiency_gops_mm2 >= 0 for row in rows)
        assert sum(row.n_clusters for row in rows) <= resnet_final_mapping.arch.n_clusters

    def test_deepest_group_least_efficient_among_conv_groups(
        self, resnet_final_mapping, paper_arch
    ):
        compute_only = simulate(
            paper_arch, lower_to_workload(resnet_final_mapping, zero_communication=True)
        )
        rows = group_area_efficiency(resnet_final_mapping, compute_only)
        by_shape = {row.ifm_shape: row.area_efficiency_gops_mm2 for row in rows}
        # Fig. 7: the 8x8x512 group is far less area-efficient than the
        # 32x32x128 group.
        assert by_shape["8x8x512"] < by_shape["32x32x128"]
        text = format_group_efficiency(rows)
        assert "GOPS/mm2" in text


class TestRunner:
    def test_run_inference_small_system(self, small_arch, tiny_graph):
        report = run_inference(
            tiny_graph, small_arch, batch_size=2,
            with_waterfall=True, with_group_efficiency=True,
        )
        assert report.result.completed
        assert report.metrics.throughput_tops > 0
        assert report.waterfall is not None
        assert report.breakdown
        assert report.group_efficiency
        assert "throughput" in report.format()

    def test_run_optimization_study_ordering(self, small_arch):
        graph = models.residual_chain(n_blocks=2, input_shape=(3, 32, 32), width=16)
        reports = run_optimization_study(graph, small_arch, batch_size=2, with_breakdown=False)
        naive = reports[OptimizationLevel.NAIVE].metrics.throughput_tops
        final = reports[OptimizationLevel.FINAL].metrics.throughput_tops
        assert final >= naive
        table = format_study(reports)
        assert "naive" in table and "final" in table

    def test_report_formatting_helpers(self, small_arch, tiny_graph):
        report = run_inference(tiny_graph, small_arch, batch_size=2)
        assert "TOPS" in format_metrics(report.metrics)
        assert "mapping" in format_comparison([report.metrics])
