"""Shared fixtures for the test suite.

Expensive artefacts (the ResNet-18 graph, the paper-scale architecture and
the full mapping study) are session-scoped so the suite stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.arch import ArchConfig
from repro.core import MappingOptimizer, OptimizationLevel, lower_to_workload
from repro.dnn import models
from repro.sim import simulate


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_store(tmp_path_factory):
    """Point the default on-disk artifact store at a session tempdir.

    The scenarios CLI persists artifacts under ``$REPRO_CACHE_DIR`` (or
    ``~/.cache/repro``) by default; tests must neither pollute nor be
    warmed by the developer's real store.  Forked sweep workers inherit
    the environment, so the isolation covers parallel runs too.
    """
    root = tmp_path_factory.mktemp("artifact-store")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def paper_arch() -> ArchConfig:
    """The Table I architecture (512 clusters)."""
    return ArchConfig.paper()


@pytest.fixture(scope="session")
def small_arch() -> ArchConfig:
    """A 16-cluster system used by most integration tests."""
    return ArchConfig.scaled(n_clusters=16, crossbar_size=256)


@pytest.fixture(scope="session")
def tiny_arch() -> ArchConfig:
    """A 4-cluster system with small crossbars for edge-case tests."""
    return ArchConfig.scaled(n_clusters=4, crossbar_size=64)


@pytest.fixture(scope="session")
def resnet18_graph():
    """ResNet-18 on 256x256 inputs (the paper's workload)."""
    return models.resnet18(input_shape=(3, 256, 256))


@pytest.fixture(scope="session")
def tiny_graph():
    """A small residual CNN for fast end-to-end tests."""
    return models.tiny_cnn(input_shape=(3, 32, 32), num_classes=10)


@pytest.fixture(scope="session")
def resnet_optimizer(resnet18_graph, paper_arch):
    """Mapping optimizer for ResNet-18 on the paper architecture."""
    return MappingOptimizer(resnet18_graph, paper_arch, batch_size=16)


@pytest.fixture(scope="session")
def resnet_final_mapping(resnet_optimizer):
    """Final (fully optimised) mapping of ResNet-18."""
    return resnet_optimizer.build(OptimizationLevel.FINAL)


@pytest.fixture(scope="session")
def resnet_final_result(resnet_final_mapping, paper_arch):
    """Simulated batch-16 run of the final ResNet-18 mapping."""
    workload = lower_to_workload(resnet_final_mapping)
    return simulate(paper_arch, workload)
