"""Tests for the mapping-policy registry (repro.core.policies).

The headline acceptance tests live here: the four paper ladder levels,
re-registered as policies, produce **bit-identical** mapping options,
payloads and ``mapping_key``s to the pre-refactor enum path, across the
model zoo; the two genuinely new policies (per-layer-pattern spatial rules
and user-supplied schedule files) behave and validate as documented; and
the schedule policy's fingerprint hashes the schedule *contents*, never
its path.
"""

import dataclasses
import json
import pickle

import pytest

from repro.arch import ArchConfig
from repro.core import (
    MappingOptimizer,
    MappingOptions,
    OptimizationLevel,
    ResidualPlan,
    available_policies,
    balance_pipeline,
    build_mapping,
    layer_pattern,
    policy_class,
    register_policy,
    resolve_policy,
)
from repro.core.policies import (
    FinalPolicy,
    MappingPolicy,
    NaivePolicy,
    PipelinedPolicy,
    PolicyError,
    ReplicatedPolicy,
    SchedulePolicy,
    SpatialPatternPolicy,
    _REGISTRY,
)
from repro.dnn import models
from repro.dnn.builder import GraphBuilder
from repro.runner import run_optimization_study
from repro.scenarios.fingerprint import arch_key, graph_key, mapping_key

LADDER = ("naive", "pipelined", "replicated", "final")


def small_arch():
    return ArchConfig.scaled(n_clusters=16, crossbar_size=256)


def pre_refactor_options(optimizer, level: str) -> MappingOptions:
    """The exact MappingOptions the pre-registry enum ladder produced.

    Hand-constructed from the primitives (not via the registry) so the
    bit-identity assertions compare against an independent spelling of
    the historical behaviour.
    """
    if level == "naive":
        return MappingOptions(
            batch_size=optimizer.batch_size,
            residual_mode=ResidualPlan.MODE_HBM,
            name="naive",
        )
    balance = balance_pipeline(
        optimizer.graph,
        optimizer.arch,
        optimizer.tiling,
        reserve_clusters=optimizer.reserve_clusters,
        max_replication=optimizer.max_replication,
    )
    if level == "pipelined":
        return MappingOptions(
            batch_size=optimizer.batch_size,
            parallelization=dict(balance.parallelization),
            residual_mode=ResidualPlan.MODE_HBM,
            name="pipelined",
        )
    return MappingOptions(
        batch_size=optimizer.batch_size,
        replication=dict(balance.replication),
        parallelization=dict(balance.parallelization),
        residual_mode=(
            ResidualPlan.MODE_SPARE_L1 if level == "final" else ResidualPlan.MODE_HBM
        ),
        name=level,
    )


# --------------------------------------------------------------------------- #
# Registry mechanics
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(LADDER) <= set(available_policies())
        assert {"spatial", "schedule"} <= set(available_policies())

    def test_policy_class_and_descriptions(self):
        for name in available_policies():
            cls = policy_class(name)
            assert cls.name == name
            assert cls.description  # --list-policies needs one

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(PolicyError, match="registered policies"):
            policy_class("bogus")
        with pytest.raises(PolicyError, match="bogus"):
            resolve_policy("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PolicyError, match="already registered"):

            @register_policy
            @dataclasses.dataclass(frozen=True)
            class Clash(MappingPolicy):
                name = "naive"

        assert _REGISTRY["naive"] is NaivePolicy  # registry not clobbered

    def test_nameless_registration_rejected(self):
        with pytest.raises(PolicyError, match="non-empty"):

            @register_policy
            @dataclasses.dataclass(frozen=True)
            class NoName(MappingPolicy):
                pass

    def test_resolve_accepts_every_spelling(self):
        expected = FinalPolicy()
        assert resolve_policy(expected) is expected
        assert resolve_policy(OptimizationLevel.FINAL) == expected
        assert resolve_policy("final") == expected
        assert resolve_policy({"policy": "final"}) == expected
        # the frozen tuple-of-pairs form Scenario normalises mappings to
        assert resolve_policy((("policy", "final"),)) == expected

    def test_resolve_rejects_garbage(self):
        with pytest.raises(PolicyError, match="cannot interpret"):
            resolve_policy(42)
        with pytest.raises(PolicyError, match="'policy' key"):
            resolve_policy({"path": "x.toml"})
        with pytest.raises(PolicyError, match="unknown parameter"):
            resolve_policy({"policy": "spatial", "bogus": 3})

    def test_named_and_inline_spellings_share_tokens(self):
        named = resolve_policy("spatial")
        inline = resolve_policy({"policy": "spatial"})
        assert named == inline
        assert named.fingerprint_token() == inline.fingerprint_token()

    def test_policies_pickle(self):
        for name in LADDER + ("spatial",):
            policy = resolve_policy(name)
            assert pickle.loads(pickle.dumps(policy)) == policy


# --------------------------------------------------------------------------- #
# Bit-identity of the ladder policies vs the pre-refactor enum path
# --------------------------------------------------------------------------- #
class TestLadderBitIdentity:
    ZOO = (
        ("tiny_cnn", dict(input_shape=(3, 32, 32), num_classes=10)),
        ("linear_cnn", dict(input_shape=(3, 32, 32), num_classes=10)),
        ("residual_chain", dict(input_shape=(3, 32, 32), num_classes=10)),
        ("mlp", dict()),
    )

    @pytest.mark.parametrize("model_name,kwargs", ZOO)
    def test_options_and_payloads_bit_identical(self, model_name, kwargs):
        graph = getattr(models, model_name)(**kwargs)
        arch = ArchConfig.scaled(n_clusters=32, crossbar_size=256)
        optimizer = MappingOptimizer(graph, arch, batch_size=2)
        for level in LADDER:
            policy = resolve_policy(level)
            expected_options = pre_refactor_options(optimizer, level)
            assert policy.options(optimizer) == expected_options, level
            via_policy = policy.build(optimizer)
            via_enum = optimizer.build(OptimizationLevel(level))
            assert via_policy.to_payload() == via_enum.to_payload(), level
            # modulo the new provenance stamp, the payload equals a direct
            # pre-refactor build from the hand-constructed options
            direct = build_mapping(
                graph, arch, expected_options, tiling=optimizer.tiling
            )
            payload, direct_payload = via_policy.to_payload(), direct.to_payload()
            assert payload.pop("policy") == level
            assert direct_payload.pop("policy") == ""
            assert payload == direct_payload, level

    def test_mapping_keys_identical_to_raw_enum_keys(self, tiny_graph):
        arch = small_arch()
        g_fp, a_fp = graph_key(tiny_graph), arch_key(arch)
        for level in LADDER:
            enum_key = mapping_key(g_fp, a_fp, 2, OptimizationLevel(level), 4, 64)
            policy_key = mapping_key(g_fp, a_fp, 2, resolve_policy(level), 4, 64)
            assert policy_key == enum_key, level

    def test_ladder_order(self):
        assert tuple(l.value for l in OptimizationLevel.ladder()) == LADDER
        # the paper's Fig. 5A comparison stays the three design points
        assert tuple(l.value for l in OptimizationLevel.all()) == (
            "naive",
            "replicated",
            "final",
        )

    def test_pipelined_sits_between_naive_and_replicated(self, tiny_graph):
        optimizer = MappingOptimizer(tiny_graph, small_arch(), batch_size=2)
        options = resolve_policy("pipelined").options(optimizer)
        assert options.replication == {}  # no analog replication yet
        assert options.parallelization == dict(optimizer.balance().parallelization)
        assert options.residual_mode == ResidualPlan.MODE_HBM


# --------------------------------------------------------------------------- #
# The spatial per-layer-pattern policy
# --------------------------------------------------------------------------- #
def pattern_graph():
    """A graph exercising every spatial pattern: depthwise, pointwise,
    generic conv, dense, plus digital add/pool layers."""
    b = GraphBuilder("patterns", input_shape=(8, 16, 16))
    c1 = b.conv2d(16, kernel_size=3, name="stem")
    dw = b.conv2d(16, kernel_size=3, groups=16, name="dw")
    pw = b.conv2d(16, kernel_size=1, name="pw")
    b.add(pw, c1, name="res")
    b.global_avg_pool()
    b.linear(10, name="head")
    return b.build()


class TestSpatialPolicy:
    def test_pattern_classifier(self):
        graph = pattern_graph()
        by_name = {n.name: n for n in graph.nodes}
        assert layer_pattern(by_name["stem"]) == "conv"
        assert layer_pattern(by_name["dw"]) == "depthwise"
        assert layer_pattern(by_name["pw"]) == "pointwise"
        assert layer_pattern(by_name["head"]) == "dense"
        assert layer_pattern(by_name["res"]) == "digital"

    def test_per_pattern_replication_rules(self):
        graph = pattern_graph()
        optimizer = MappingOptimizer(graph, small_arch(), batch_size=2)
        policy = SpatialPatternPolicy(
            depthwise=2, pointwise=3, conv=1, dense=1, digital_parallel=2
        )
        options = policy.options(optimizer)
        by_name = {n.name: n.node_id for n in graph.nodes}
        assert options.replication == {by_name["dw"]: 2, by_name["pw"]: 3}
        digital_ids = {
            n.node_id for n in graph.nodes if n.inputs and not n.is_analog
        }
        assert options.parallelization == {i: 2 for i in digital_ids}
        assert options.name == "spatial"

    def test_factors_capped_at_max_replication(self, tiny_graph):
        optimizer = MappingOptimizer(
            tiny_graph, small_arch(), batch_size=2, max_replication=2
        )
        options = SpatialPatternPolicy(conv=8).options(optimizer)
        assert options.replication and all(
            factor <= 2 for factor in options.replication.values()
        )

    def test_builds_end_to_end(self, tiny_graph):
        optimizer = MappingOptimizer(tiny_graph, small_arch(), batch_size=2)
        mapping = optimizer.build({"policy": "spatial", "conv": 2})
        assert mapping.policy == "spatial"
        assert mapping.record().policy == "spatial"
        replicated = [l for l in mapping.layers.values() if l.replication == 2]
        assert replicated

    def test_validation(self):
        with pytest.raises(PolicyError, match="integer >= 1"):
            SpatialPatternPolicy(conv=0)
        with pytest.raises(PolicyError, match="integer >= 1"):
            SpatialPatternPolicy(depthwise="two")
        with pytest.raises(PolicyError, match="residual_mode"):
            SpatialPatternPolicy(residual_mode="l3")


# --------------------------------------------------------------------------- #
# The user-supplied schedule-file policy
# --------------------------------------------------------------------------- #
SCHEDULE_TOML = """
name = "tiny-custom"
residual_mode = "spare_l1"

[layers.conv2]
replication = 2

[layers.res3]
parallelization = 2
"""


class TestSchedulePolicy:
    def test_toml_schedule_applies_per_layer_factors(self, tmp_path, tiny_graph):
        path = tmp_path / "sched.toml"
        path.write_text(SCHEDULE_TOML)
        policy = SchedulePolicy(path=str(path))
        optimizer = MappingOptimizer(tiny_graph, small_arch(), batch_size=2)
        options = policy.options(optimizer)
        by_name = {n.name: n.node_id for n in tiny_graph.nodes}
        assert options.replication == {by_name["conv2"]: 2}
        assert options.parallelization == {by_name["res3"]: 2}
        assert options.residual_mode == ResidualPlan.MODE_SPARE_L1
        assert policy.label == "schedule:tiny-custom"
        mapping = policy.build(optimizer)
        assert mapping.layers[by_name["conv2"]].replication == 2
        assert mapping.layers[by_name["res3"]].parallel_clusters == 2
        assert mapping.policy == "schedule:tiny-custom"

    def test_json_schedule_and_numeric_node_ids(self, tmp_path, tiny_graph):
        by_name = {n.name: n.node_id for n in tiny_graph.nodes}
        path = tmp_path / "sched.json"
        path.write_text(
            json.dumps({"layers": {str(by_name["conv2"]): {"replication": 2}}})
        )
        policy = SchedulePolicy(path=str(path))
        optimizer = MappingOptimizer(tiny_graph, small_arch(), batch_size=2)
        options = policy.options(optimizer)
        assert options.replication == {by_name["conv2"]: 2}
        assert options.residual_mode == ResidualPlan.MODE_HBM  # the default
        assert policy.label == "schedule:sched"  # falls back to the stem

    def test_token_hashes_contents_not_path(self, tmp_path):
        a = tmp_path / "a.toml"
        b = tmp_path / "b.toml"
        a.write_text(SCHEDULE_TOML)
        b.write_text(SCHEDULE_TOML)
        assert (
            SchedulePolicy(path=str(a)).fingerprint_token()
            == SchedulePolicy(path=str(b)).fingerprint_token()
        )
        # same path, different contents -> different token (and key)
        before = SchedulePolicy(path=str(a))
        a.write_text(SCHEDULE_TOML.replace("replication = 2", "replication = 4"))
        after = SchedulePolicy(path=str(a))
        assert before.fingerprint_token() != after.fingerprint_token()
        g_fp, a_fp = "g" * 8, "a" * 8
        assert mapping_key(g_fp, a_fp, 2, before, 4, 64) != mapping_key(
            g_fp, a_fp, 2, after, 4, 64
        )

    def test_structural_validation(self, tmp_path):
        with pytest.raises(PolicyError, match="does not exist"):
            SchedulePolicy(path=str(tmp_path / "missing.toml"))
        with pytest.raises(PolicyError, match="needs a 'path'"):
            SchedulePolicy()
        bad = tmp_path / "bad.toml"
        bad.write_text("residual_mode = 'l9'")
        with pytest.raises(PolicyError, match="residual_mode"):
            SchedulePolicy(path=str(bad))
        bad.write_text("[layers.conv1]\nwarp = 3")
        with pytest.raises(PolicyError, match="unknown"):
            SchedulePolicy(path=str(bad))
        bad.write_text("[layers.conv1]\nreplication = 0")
        with pytest.raises(PolicyError, match="integer >= 1"):
            SchedulePolicy(path=str(bad))
        bad.write_text("typo_section = 1")
        with pytest.raises(PolicyError, match="unknown key"):
            SchedulePolicy(path=str(bad))
        bad.write_text("not toml ][")
        with pytest.raises(PolicyError, match="cannot parse"):
            SchedulePolicy(path=str(bad))

    def test_graph_validation(self, tmp_path, tiny_graph):
        optimizer = MappingOptimizer(tiny_graph, small_arch(), batch_size=2)
        path = tmp_path / "sched.toml"
        path.write_text("[layers.nope]\nreplication = 2")
        with pytest.raises(PolicyError, match="not in graph"):
            SchedulePolicy(path=str(path)).options(optimizer)
        path.write_text("[layers.res3]\nreplication = 2")
        with pytest.raises(PolicyError, match="only analog"):
            SchedulePolicy(path=str(path)).options(optimizer)
        path.write_text("[layers.conv2]\nparallelization = 2")
        with pytest.raises(PolicyError, match="only digital"):
            SchedulePolicy(path=str(path)).options(optimizer)

    def test_schedule_policy_pickles_with_contents(self, tmp_path):
        path = tmp_path / "sched.toml"
        path.write_text(SCHEDULE_TOML)
        policy = SchedulePolicy(path=str(path))
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.schedule == policy.schedule


# --------------------------------------------------------------------------- #
# Runner integration
# --------------------------------------------------------------------------- #
class TestRunnerIntegration:
    def test_study_rejects_duplicate_policies(self, tiny_graph):
        with pytest.raises(ValueError, match="same mapping policy"):
            run_optimization_study(
                tiny_graph,
                small_arch(),
                batch_size=2,
                levels=[OptimizationLevel.FINAL, "final"],
            )

    def test_study_mixes_ladder_and_custom_policies(self, tiny_graph):
        reports = run_optimization_study(
            tiny_graph,
            small_arch(),
            batch_size=2,
            levels=[OptimizationLevel.NAIVE, "pipelined", FinalPolicy()],
        )
        assert len(reports) == 3
        naive = reports[OptimizationLevel.NAIVE]
        assert naive.level is OptimizationLevel.NAIVE
        assert isinstance(naive.policy, NaivePolicy)
        assert isinstance(reports["pipelined"].policy, PipelinedPolicy)
        assert reports["pipelined"].mapping.policy == "pipelined"

    def test_non_ladder_report_has_no_level(self, tiny_graph):
        from repro.runner import run_inference

        report = run_inference(
            tiny_graph, small_arch(), batch_size=2, level={"policy": "spatial"}
        )
        assert report.level is None
        assert isinstance(report.policy, SpatialPatternPolicy)
        assert report.metrics.name.endswith("spatial")

    def test_format_study_orders_ladder_first(self, tiny_graph):
        from repro.runner import format_study

        reports = run_optimization_study(
            tiny_graph,
            small_arch(),
            batch_size=2,
            levels=["spatial", OptimizationLevel.NAIVE],
        )
        table = format_study(reports)
        assert table.index("naive") < table.index("spatial")
