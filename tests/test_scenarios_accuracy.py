"""Tests for the accuracy axis: execution specs, the accuracy stage, caching.

The headline acceptance tests live here: the ``execution`` block makes the
analog functional backends a first-class scenario dimension — the digital
backend reproduces :class:`ReferenceExecutor` bit-for-bit, a warm accuracy
sweep (serial or parallel, through the persistent store) performs zero new
executor runs, and accuracy cache keys are stable across spec spellings
(preset name vs equivalent inline mapping) while staying injective on
distinct noise/converter configurations.
"""

import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.aimc import NOISE_PRESETS, NoiseModel, resolve_noise_spec
from repro.dnn.numerics import ReferenceExecutor, initialize_parameters, random_input
from repro.scenarios import (
    ACCURACY_PAYLOAD_VERSION,
    AccuracyRecord,
    ArtifactCache,
    ArtifactStore,
    ExecutionSpec,
    Scenario,
    ScenarioGrid,
    SpecError,
    SweepRunner,
    accuracy_stage,
    graph_stage,
    load_spec,
    parse_spec,
    run_scenario,
)
from repro.scenarios import pipeline as pipeline_module
from repro.scenarios.cli import main as cli_main
from repro.scenarios.fingerprint import accuracy_key

REPO_ROOT = Path(__file__).resolve().parents[1]

TINY = Scenario(
    model="tiny_cnn",
    input_shape=(3, 16, 16),
    num_classes=10,
    n_clusters=16,
    batch_size=2,
    level="final",
    execution=ExecutionSpec(backend="vectorized", noise="typical"),
)


def counting_executors(monkeypatch):
    """Patch the pipeline's executor classes with construction counters."""
    calls = {"analog": 0, "digital": 0}
    real_analog = pipeline_module.AnalogExecutor
    real_digital = pipeline_module.ReferenceExecutor

    def analog(*args, **kwargs):
        calls["analog"] += 1
        return real_analog(*args, **kwargs)

    def digital(*args, **kwargs):
        calls["digital"] += 1
        return real_digital(*args, **kwargs)

    monkeypatch.setattr(pipeline_module, "AnalogExecutor", analog)
    monkeypatch.setattr(pipeline_module, "ReferenceExecutor", digital)
    return calls


# --------------------------------------------------------------------------- #
# Spec layer
# --------------------------------------------------------------------------- #
class TestExecutionSpec:
    def test_defaults_and_labels(self):
        spec = ExecutionSpec()
        assert spec.backend == "vectorized"
        assert spec.noise_label == "typical"
        assert spec.label == "vectorized:typical"
        assert ExecutionSpec(dac_bits=6, adc_bits=4).label == "vectorized:typical:d6a4"

    def test_validation(self):
        with pytest.raises(SpecError, match="unknown execution backend"):
            ExecutionSpec(backend="gpu")
        with pytest.raises(SpecError, match="unknown noise preset"):
            ExecutionSpec(noise="noisy")
        with pytest.raises(SpecError, match="dac_bits"):
            ExecutionSpec(dac_bits=0)
        with pytest.raises(SpecError, match="n_inputs"):
            ExecutionSpec(n_inputs=0)
        with pytest.raises(SpecError, match="unknown noise field"):
            ExecutionSpec(noise={"amplitude": 3.0})
        # bad resolved values also fail at spec time, not mid-sweep
        with pytest.raises(SpecError, match="ir_drop_factor"):
            ExecutionSpec(noise={"ir_drop_factor": 2.0})

    def test_coercion_forms(self):
        assert ExecutionSpec.coerce("ideal") == ExecutionSpec(noise="ideal")
        spec = ExecutionSpec.coerce({"backend": "reference", "noise": {"read_noise": False}})
        assert spec.backend == "reference"
        assert spec.noise == (("read_noise", False),)
        with pytest.raises(SpecError, match="unknown execution field"):
            ExecutionSpec.coerce({"backnd": "vectorized"})
        with pytest.raises(SpecError, match="execution must be"):
            ExecutionSpec.coerce(3)
        # resolved models have no lossless inline spelling: reject loudly
        with pytest.raises(SpecError, match="not a NoiseModel"):
            ExecutionSpec(noise=NoiseModel.typical())
        with pytest.raises(SpecError, match="preset name or a field mapping"):
            ExecutionSpec(noise=3.5)

    def test_noise_label_is_spelling_independent(self):
        """The label derives from the resolved model, like the cache key:
        an inline mapping equivalent to a preset labels as that preset, so
        cached records can never be served under a mismatched label."""
        assert ExecutionSpec(noise={}).noise_label == "typical"
        assert ExecutionSpec(noise={"preset": "pessimistic"}).noise_label == "pessimistic"
        assert ExecutionSpec(noise={"drift_time_s": 3600.0}).noise_label == "drift"
        assert ExecutionSpec(noise={"ir_drop_factor": 0.99}).noise_label == "inline"

    def test_scenario_coerces_and_labels(self):
        scenario = TINY.replace(execution={"noise": "pessimistic"})
        assert isinstance(scenario.execution, ExecutionSpec)
        assert scenario.label.endswith("/vectorized:pessimistic")
        # performance-only scenarios keep their old labels
        assert "vectorized" not in TINY.replace(execution=None).label

    def test_as_dict_is_json_safe_and_round_trips(self):
        scenario = TINY.replace(
            execution={"backend": "reference", "noise": {"drift_time_s": 60.0}}
        )
        payload = json.loads(json.dumps(scenario.as_dict()))
        assert payload["execution"]["noise"] == {"drift_time_s": 60.0}
        rebuilt = Scenario(**{**payload, "input_shape": tuple(payload["input_shape"])})
        assert rebuilt == scenario
        assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_spec_file_round_trip(self, tmp_path):
        spec = tmp_path / "accuracy.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "acc"',
                    "[base]",
                    'model = "tiny_cnn"',
                    "input_shape = [3, 16, 16]",
                    "num_classes = 10",
                    "n_clusters = 16",
                    'level = "final"',
                    "[base.execution]",
                    'backend = "vectorized"',
                    "n_inputs = 2",
                    "[axes]",
                    "crossbar_size = [128, 256]",
                    'execution = ["ideal", { noise = "typical", adc_bits = 6 }]',
                ]
            )
        )
        grid = load_spec(spec)
        scenarios = grid.expand()
        assert len(scenarios) == 4
        assert scenarios[0].execution == ExecutionSpec(noise="ideal")
        assert scenarios[1].execution.adc_bits == 6
        # a bad preset in an axis fails at load time with the spec diagnostic
        bad = {"base": {}, "axes": {"execution": ["idael"]}}
        with pytest.raises(SpecError, match="unknown noise preset"):
            parse_spec(bad)


class TestNoiseResolution:
    def test_presets_resolve_to_their_models(self):
        assert resolve_noise_spec("ideal") == NoiseModel.ideal()
        assert resolve_noise_spec("typical") == NoiseModel.typical()
        assert resolve_noise_spec("pessimistic") == NoiseModel.pessimistic()
        assert resolve_noise_spec("drift") == NoiseModel.typical().with_drift(3600.0)
        assert set(NOISE_PRESETS) == {"ideal", "typical", "pessimistic", "drift"}

    def test_inline_mapping_overrides_a_preset_base(self):
        assert resolve_noise_spec({}) == NoiseModel.typical()
        assert resolve_noise_spec({"preset": "pessimistic"}) == NoiseModel.pessimistic()
        model = resolve_noise_spec({"preset": "ideal", "ir_drop_factor": 0.99})
        assert model.ir_drop_factor == 0.99 and not model.read_noise

    def test_converter_bits_override_the_resolved_model(self):
        spec = ExecutionSpec(noise="pessimistic", dac_bits=4, adc_bits=5)
        model = spec.noise_model
        assert model.dac.bits == 4 and model.adc.bits == 5
        # untouched fields of the nested specs survive the override
        assert model.adc.noise_frac == NoiseModel.pessimistic().adc.noise_frac


# --------------------------------------------------------------------------- #
# Fingerprint stability and injectivity
# --------------------------------------------------------------------------- #
class TestAccuracyKeys:
    GRAPH_FP = "g" * 64

    def key(self, spec: ExecutionSpec, crossbar: int = 256) -> str:
        return accuracy_key(
            self.GRAPH_FP,
            spec.noise_model,
            spec.backend,
            crossbar,
            spec.seed,
            spec.n_inputs,
        )

    def test_equivalent_spellings_share_one_key(self):
        """Preset name vs equivalent inline mappings: same resolved model,
        same key — the cache is addressed by content, not spelling."""
        preset = self.key(ExecutionSpec(noise="typical"))
        assert self.key(ExecutionSpec(noise={})) == preset
        assert self.key(ExecutionSpec(noise={"preset": "typical"})) == preset
        drift = self.key(ExecutionSpec(noise="drift"))
        assert self.key(ExecutionSpec(noise={"drift_time_s": 3600.0})) == drift
        # and the key is stable across processes/calls (pure content hash)
        assert self.key(ExecutionSpec(noise="typical")) == preset

    def test_distinct_configurations_get_distinct_keys(self):
        specs = [
            ExecutionSpec(),
            ExecutionSpec(noise="ideal"),
            ExecutionSpec(noise="pessimistic"),
            ExecutionSpec(noise="drift"),
            ExecutionSpec(noise={"ir_drop_factor": 0.99}),
            ExecutionSpec(backend="reference"),
            ExecutionSpec(backend="digital"),
            ExecutionSpec(dac_bits=6),
            ExecutionSpec(adc_bits=6),
            ExecutionSpec(seed=1),
            ExecutionSpec(n_inputs=2),
        ]
        keys = [self.key(spec) for spec in specs]
        assert len(set(keys)) == len(keys)
        assert self.key(ExecutionSpec(), crossbar=128) != self.key(ExecutionSpec())


# --------------------------------------------------------------------------- #
# The accuracy stage
# --------------------------------------------------------------------------- #
class TestAccuracyStage:
    @pytest.fixture(scope="class")
    def graph(self):
        return TINY.build_graph()

    def test_digital_backend_is_bit_for_bit(self, graph):
        """The digital path reproduces ReferenceExecutor exactly: RMS 0.0,
        not merely small — any nondeterminism in parameter or input
        generation would break this equality."""
        spec = ExecutionSpec(backend="digital", n_inputs=3)
        record = accuracy_stage(graph, spec, crossbar_size=256)
        assert record.rms_error == 0.0
        assert record.top1_agreement == 1.0
        assert record.total_crossbars == 0
        # the reference outputs really are the ReferenceExecutor's
        parameters = initialize_parameters(graph, seed=spec.seed)
        executor = ReferenceExecutor(graph, parameters=parameters)
        image = random_input(graph, seed=np.random.SeedSequence((spec.seed, 0)))
        expected = executor.run_output(image)
        cache = ArtifactCache()
        outputs = pipeline_module.reference_output_stage(graph, spec, cache)
        assert np.array_equal(outputs[0], expected)

    def test_ideal_noise_matches_digital_to_float_rounding(self, graph):
        for backend in ("vectorized", "reference"):
            record = accuracy_stage(
                graph, ExecutionSpec(backend=backend, noise="ideal"), crossbar_size=256
            )
            assert record.relative_rms_error < 1e-12, backend
            assert record.top1_agreement == 1.0

    def test_noise_presets_order_by_severity(self, graph):
        def rel(noise):
            return accuracy_stage(
                graph, ExecutionSpec(noise=noise, n_inputs=2), crossbar_size=256
            ).relative_rms_error

        ideal, typical, pessimistic = rel("ideal"), rel("typical"), rel("pessimistic")
        assert ideal < typical < pessimistic
        assert pessimistic > 0.1  # 6-bit converters + drift visibly degrade

    def test_converter_resolution_is_a_live_axis(self, graph):
        coarse = accuracy_stage(
            graph, ExecutionSpec(noise="typical", adc_bits=3), crossbar_size=256
        )
        fine = accuracy_stage(graph, ExecutionSpec(noise="typical"), crossbar_size=256)
        assert coarse.rms_error > fine.rms_error

    def test_record_is_plain_data(self, graph):
        record = accuracy_stage(graph, ExecutionSpec(n_inputs=2), crossbar_size=128)
        assert record.total_crossbars > 0
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        payload = json.loads(json.dumps(record.as_dict()))
        assert payload["n_inputs"] == 2
        assert payload["relative_rms_error"] == pytest.approx(record.relative_rms_error)

    def test_payload_round_trip_and_stale_version(self, graph):
        record = accuracy_stage(graph, ExecutionSpec(), crossbar_size=256)
        payload = record.to_payload()
        assert payload["version"] == ACCURACY_PAYLOAD_VERSION
        assert AccuracyRecord.from_payload(payload) == record
        stale = dict(payload, version=ACCURACY_PAYLOAD_VERSION + 1)
        with pytest.raises(ValueError, match="stale artifact"):
            AccuracyRecord.from_payload(stale)


# --------------------------------------------------------------------------- #
# Cache semantics
# --------------------------------------------------------------------------- #
class TestAccuracyCaching:
    def test_warm_serial_rerun_runs_zero_executors(self, monkeypatch):
        calls = counting_executors(monkeypatch)
        cache = ArtifactCache()
        cold = run_scenario(TINY, cache)
        # one analog executor + one digital reference per cold point
        assert calls == {"analog": 1, "digital": 1}
        warm = run_scenario(TINY, cache)
        assert calls == {"analog": 1, "digital": 1}  # zero new executor runs
        assert cache.stats.hit_count("accuracy") == 1
        assert warm.accuracy == cold.accuracy

    def test_reference_outputs_shared_across_noise_points(self, monkeypatch):
        calls = counting_executors(monkeypatch)
        cache = ArtifactCache()
        graph = graph_stage(TINY, cache)
        for noise in ("ideal", "typical", "pessimistic"):
            accuracy_stage(graph, ExecutionSpec(noise=noise), cache=cache)
        assert calls["digital"] == 1  # one digital forward serves all presets
        assert calls["analog"] == 3

    def test_accuracy_key_ignores_performance_only_axes(self, monkeypatch):
        """One accuracy artifact serves every cluster-count/batch point."""
        calls = counting_executors(monkeypatch)
        cache = ArtifactCache()
        grid = ScenarioGrid.from_axes(
            base=TINY, n_clusters=(8, 16), batch_size=(2, 4)
        )
        result = SweepRunner(max_workers=1, cache=cache).run(grid)
        assert len(result) == 4 and not result.failures
        assert calls["analog"] == 1
        assert cache.stats.miss_count("accuracy") == 1
        assert cache.stats.hit_count("accuracy") == 3
        records = {outcome.accuracy for outcome in result}
        assert len(records) == 1  # identical record object content

    def test_equivalent_spellings_share_one_record_with_one_label(self, monkeypatch):
        calls = counting_executors(monkeypatch)
        cache = ArtifactCache()
        graph = graph_stage(TINY, cache)
        preset = accuracy_stage(graph, ExecutionSpec(noise="typical"), cache=cache)
        inline = accuracy_stage(graph, ExecutionSpec(noise={}), cache=cache)
        assert calls["analog"] == 1  # second spelling served from cache
        assert inline is preset
        assert preset.noise_label == "typical"

    def test_digital_backend_shares_one_record_across_noise_and_crossbars(
        self, monkeypatch
    ):
        """The digital path reads neither noise nor crossbar geometry, so
        its key normalises both: one control record serves the grid."""
        calls = counting_executors(monkeypatch)
        cache = ArtifactCache()
        graph = graph_stage(TINY, cache)
        records = [
            accuracy_stage(
                graph,
                ExecutionSpec(backend="digital", noise=noise),
                crossbar_size=crossbar,
                cache=cache,
            )
            for noise in ("ideal", "pessimistic")
            for crossbar in (128, 256)
        ]
        assert cache.stats.miss_count("accuracy") == 1
        assert all(record is records[0] for record in records)
        assert records[0].crossbar_size == 0
        assert records[0].noise_label == "n/a"
        # one digital run for the record + one for the shared reference
        assert calls == {"analog": 0, "digital": 2}

    def test_warm_store_serves_accuracy_across_processes(self, tmp_path, monkeypatch):
        calls = counting_executors(monkeypatch)
        store = ArtifactStore(tmp_path / "store")
        cold = run_scenario(TINY, ArtifactCache(store=store))
        assert calls == {"analog": 1, "digital": 1}
        assert store.size("accuracy") == 1
        fresh = ArtifactCache(store=store)  # simulates a new process
        warm = run_scenario(TINY, fresh)
        assert calls == {"analog": 1, "digital": 1}  # record rehydrated, not rebuilt
        assert fresh.stats.miss_count("accuracy") == 0
        assert fresh.stats.disk_hit_count("accuracy") == 1
        assert warm.accuracy == cold.accuracy

    def test_stale_accuracy_payload_forces_rebuild(self, tmp_path, monkeypatch):
        calls = counting_executors(monkeypatch)
        store = ArtifactStore(tmp_path / "store")
        run_scenario(TINY, ArtifactCache(store=store))
        region_dir = store._namespace / "accuracy"
        stamped = 0
        for path in region_dir.rglob("*"):
            if not path.is_file():
                continue
            envelope = pickle.loads(path.read_bytes())
            envelope["payload"]["version"] = ACCURACY_PAYLOAD_VERSION + 1
            path.write_bytes(pickle.dumps(envelope))
            stamped += 1
        assert stamped == 1
        fresh = ArtifactCache(store=store)
        run_scenario(TINY, fresh)
        assert calls["analog"] == 2  # rebuilt, not served stale
        assert fresh.stats.miss_count("accuracy") == 1
        assert fresh.stats.disk_hit_count("accuracy") == 0


# --------------------------------------------------------------------------- #
# Acceptance: the example spec through the sweep engine and the CLI
# --------------------------------------------------------------------------- #
class TestAccuracySweepAcceptance:
    EXAMPLE = REPO_ROOT / "examples" / "accuracy_sweep.toml"

    def test_example_spec_expands_to_the_preset_grid(self):
        grid = load_spec(self.EXAMPLE)
        scenarios = grid.expand()
        assert len(scenarios) == 8  # 2 crossbar sizes x 4 noise presets
        labels = {s.execution.noise_label for s in scenarios}
        assert labels == {"ideal", "typical", "pessimistic", "drift"}
        assert {s.crossbar_size for s in scenarios} == {128, 256}

    def test_warm_serial_sweep_builds_nothing(self, tmp_path, monkeypatch):
        calls = counting_executors(monkeypatch)
        scenarios = load_spec(self.EXAMPLE).expand()
        store = ArtifactStore(tmp_path / "store")
        cold = SweepRunner(max_workers=1, cache=ArtifactCache(store=store)).run(
            scenarios
        )
        assert len(cold) == len(scenarios) and not cold.failures
        cold_calls = dict(calls)
        assert cold_calls["analog"] == len(scenarios)
        for outcome in cold:
            assert outcome.accuracy is not None
        warm = SweepRunner(max_workers=1, cache=ArtifactCache(store=store)).run(
            scenarios
        )
        assert calls == cold_calls  # zero new executor runs
        for region in ("accuracy", "mapping", "workload", "simulation"):
            assert warm.cache_stats.miss_count(region) == 0, region
        assert warm.cache_stats.disk_hit_count("accuracy") == len(scenarios)
        for before, after in zip(cold, warm):
            assert before.accuracy == after.accuracy
            assert before.metrics == after.metrics

    def test_warm_parallel_sweep_builds_nothing(self, tmp_path):
        """Aggregated worker cache stats prove zero executor/simulate runs
        across every worker of a warm parallel re-run."""
        scenarios = load_spec(self.EXAMPLE).expand()
        store = ArtifactStore(tmp_path / "store")
        cold = SweepRunner(
            max_workers=2, cache=ArtifactCache(store=store), on_error="record"
        ).run(scenarios)
        assert len(cold) == len(scenarios) and not cold.failures
        assert store.size("accuracy") == len(scenarios)
        warm = SweepRunner(
            max_workers=2, cache=ArtifactCache(store=store), on_error="record"
        ).run(scenarios)
        assert len(warm) == len(scenarios) and not warm.failures
        for region in ("accuracy", "mapping", "workload", "simulation"):
            assert warm.cache_stats.miss_count(region) == 0, region
        assert warm.cache_stats.disk_hit_count("accuracy") == len(scenarios)
        for before, after in zip(cold, warm):
            assert before.accuracy == after.accuracy

    def test_sweep_result_as_dict_carries_accuracy(self):
        result = SweepRunner(max_workers=1).run([TINY, TINY.replace(execution=None)])
        payload = json.loads(json.dumps(result.as_dict()))
        accuracy = payload["outcomes"][0]["accuracy"]
        assert accuracy["backend"] == "vectorized"
        assert accuracy["rms_error"] > 0
        assert payload["outcomes"][1]["accuracy"] is None

    def test_cli_reports_accuracy_columns_and_json(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        code = cli_main(
            [str(self.EXAMPLE), "--json", str(out), "--cache-dir", str(tmp_path / "s")]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "rel RMSE" in printed and "top1" in printed
        payload = json.loads(out.read_text())
        assert all(o["accuracy"] is not None for o in payload["outcomes"])
        labels = {o["accuracy"]["noise_label"] for o in payload["outcomes"]}
        assert labels == {"ideal", "typical", "pessimistic", "drift"}
