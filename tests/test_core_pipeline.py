"""Tests for costs, pipeline balancing, lowering and the mapping optimizer."""

import pytest

from repro.arch import ArchConfig, IMASpec
from repro.core import (
    LayerSplit,
    MappingOptimizer,
    MappingOptions,
    NETWORK_INPUT_LABEL,
    OptimizationLevel,
    ReductionPlan,
    TilingPlan,
    analog_job_cost,
    balance_pipeline,
    broadcast_bytes_per_job,
    build_mapping,
    digital_job_cycles,
    lower_to_workload,
    naive_cluster_count,
    partial_sum_bytes_per_job,
    reduction_job_cycles,
)
from repro.dnn import models
from repro.sim import ENDPOINT_HBM, ENDPOINT_STAGE, ENDPOINT_STORAGE, simulate


@pytest.fixture(scope="module")
def paper_arch():
    return ArchConfig.paper()


@pytest.fixture(scope="module")
def resnet():
    return models.resnet18()


@pytest.fixture(scope="module")
def tiling(resnet, paper_arch):
    return TilingPlan.choose(resnet, paper_arch.cluster, batch_size=16)


class TestCosts:
    def test_analog_cost_scales_with_output_size(self, resnet, tiling, paper_arch):
        convs = [n for n in resnet.analog_nodes() if n.kind == "conv2d"]
        early = convs[0]   # 128x128 output
        late = convs[-1]   # 8x8 output
        split_early = LayerSplit.for_node(early, paper_arch.ima)
        split_late = LayerSplit.for_node(late, paper_arch.ima)
        cost_early = analog_job_cost(early, split_early, tiling, paper_arch.cluster)
        cost_late = analog_job_cost(late, split_late, tiling, paper_arch.cluster)
        assert cost_early.cycles > cost_late.cycles
        assert cost_early.mvms > cost_late.mvms

    def test_analog_macs_per_job_sum_to_node_macs(self, resnet, tiling, paper_arch):
        node = resnet.analog_nodes()[1]
        split = LayerSplit.for_node(node, paper_arch.ima)
        cost = analog_job_cost(node, split, tiling, paper_arch.cluster)
        assert cost.macs * tiling.tiles_per_image == pytest.approx(node.macs, rel=0.01)

    def test_reduction_cycles_only_when_row_split(self, resnet, tiling, paper_arch):
        for node in resnet.analog_nodes():
            split = LayerSplit.for_node(node, paper_arch.ima)
            reduction = ReductionPlan.plan(split.n_row_splits)
            cycles = reduction_job_cycles(node, split, reduction, tiling, paper_arch.cluster)
            if split.n_row_splits == 1:
                assert cycles == 0
            else:
                assert cycles > 0

    def test_digital_cycles_shrink_with_parallelisation(self, resnet, tiling, paper_arch):
        pool = next(n for n in resnet.nodes if n.kind == "maxpool2d")
        serial = digital_job_cycles(pool, tiling, paper_arch.cluster, 1)
        parallel = digital_job_cycles(pool, tiling, paper_arch.cluster, 8)
        assert parallel < serial

    def test_broadcast_and_partial_sum_bytes(self, resnet, tiling, paper_arch):
        wide = next(
            n for n in resnet.analog_nodes()
            if LayerSplit.for_node(n, paper_arch.ima).needs_broadcast
        )
        split = LayerSplit.for_node(wide, paper_arch.ima)
        assert broadcast_bytes_per_job(wide, split, tiling) > 0
        assert partial_sum_bytes_per_job(wide, split, tiling) > 0
        narrow = resnet.analog_nodes()[0]
        narrow_split = LayerSplit.for_node(narrow, paper_arch.ima)
        assert broadcast_bytes_per_job(narrow, narrow_split, tiling) == 0


class TestBalancer:
    def test_balancing_reduces_bottleneck(self, resnet, paper_arch, tiling):
        result = balance_pipeline(resnet, paper_arch, tiling)
        assert result.bottleneck_after < result.bottleneck_before
        assert result.speedup > 2.0
        assert result.extra_clusters > 0

    def test_replication_targets_early_layers(self, resnet, paper_arch, tiling):
        result = balance_pipeline(resnet, paper_arch, tiling)
        stem = resnet.analog_nodes()[0].node_id
        assert result.replication.get(stem, 1) > 1

    def test_parallelisation_targets_pool_and_residual_layers(self, resnet, paper_arch, tiling):
        result = balance_pipeline(resnet, paper_arch, tiling)
        parallelised_kinds = {
            resnet.node(node_id).kind for node_id in result.parallelization
        }
        assert parallelised_kinds <= {"maxpool2d", "add", "avgpool2d", "relu", "flatten"}
        assert "maxpool2d" in parallelised_kinds

    def test_budget_respected(self, resnet, paper_arch, tiling):
        budget = 20
        result = balance_pipeline(resnet, paper_arch, tiling, cluster_budget=budget)
        assert result.extra_clusters <= budget

    def test_zero_budget_keeps_naive(self, resnet, paper_arch, tiling):
        result = balance_pipeline(resnet, paper_arch, tiling, cluster_budget=0)
        assert result.extra_clusters == 0
        assert result.replication == {}
        assert result.parallelization == {}

    def test_naive_cluster_count_consistent(self, resnet, paper_arch):
        count = naive_cluster_count(resnet, paper_arch)
        mapping = build_mapping(resnet, paper_arch, MappingOptions(name="naive"))
        assert count == mapping.n_used_clusters


class TestLowering:
    @pytest.fixture(scope="class")
    def final_mapping(self, resnet, paper_arch):
        optimizer = MappingOptimizer(resnet, paper_arch, batch_size=16)
        return optimizer.build(OptimizationLevel.FINAL)

    def test_one_stage_per_mapped_node(self, final_mapping):
        workload = lower_to_workload(final_mapping)
        assert len(workload.stages) == len(final_mapping.layers)
        assert workload.n_jobs == final_mapping.tiling.n_jobs

    def test_network_input_fetched_from_hbm(self, final_mapping):
        workload = lower_to_workload(final_mapping)
        first = workload.stages[0]
        assert any(
            flow.kind == ENDPOINT_HBM and flow.label == NETWORK_INPUT_LABEL
            for flow in first.inputs
        )

    def test_residual_flows_use_storage_in_final_mapping(self, final_mapping):
        workload = lower_to_workload(final_mapping)
        residual_flows = [
            flow
            for stage in workload.stages
            for flow in stage.inputs + stage.outputs
            if flow.label.startswith("residual")
        ]
        assert residual_flows
        assert all(flow.kind == ENDPOINT_STORAGE for flow in residual_flows)
        assert all(flow.transfers_per_job >= 1 for flow in residual_flows)

    def test_residual_flows_use_hbm_in_naive_mapping(self, resnet, paper_arch):
        naive = build_mapping(resnet, paper_arch, MappingOptions(name="naive"))
        workload = lower_to_workload(naive)
        residual_flows = [
            flow
            for stage in workload.stages
            for flow in stage.outputs
            if flow.label.startswith("residual")
        ]
        assert residual_flows
        assert all(flow.kind == ENDPOINT_HBM for flow in residual_flows)

    def test_stage_graph_is_consistent(self, final_mapping, paper_arch):
        workload = lower_to_workload(final_mapping)
        workload.validate(paper_arch.n_clusters)
        stage_ids = {stage.stage_id for stage in workload.stages}
        for stage in workload.stages:
            for flow in stage.inputs + stage.outputs:
                if flow.kind == ENDPOINT_STAGE:
                    assert flow.stage_id in stage_ids

    def test_zero_communication_variant(self, final_mapping):
        workload = lower_to_workload(final_mapping, zero_communication=True)
        assert all(
            flow.bytes_per_job == 0
            for stage in workload.stages
            for flow in stage.inputs + stage.outputs
        )
        assert all(stage.cost.intra_stage_bytes_per_job == 0 for stage in workload.stages)

    def test_totals_match_graph(self, final_mapping, resnet):
        workload = lower_to_workload(final_mapping)
        batch = workload.batch_size
        expected_macs = sum(n.macs for n in resnet.analog_nodes()) * batch
        assert workload.total_macs == pytest.approx(expected_macs, rel=0.02)


class TestOptimizer:
    def test_levels_produce_distinct_options(self, resnet, paper_arch):
        optimizer = MappingOptimizer(resnet, paper_arch, batch_size=16)
        naive = optimizer.options_for(OptimizationLevel.NAIVE)
        replicated = optimizer.options_for(OptimizationLevel.REPLICATED)
        final = optimizer.options_for(OptimizationLevel.FINAL)
        assert naive.replication == {}
        assert replicated.replication
        assert replicated.residual_mode == "hbm"
        assert final.residual_mode == "spare_l1"

    def test_build_all_returns_three_mappings(self, resnet, paper_arch):
        optimizer = MappingOptimizer(resnet, paper_arch, batch_size=16)
        mappings = optimizer.build_all()
        assert set(mappings) == set(OptimizationLevel.all())
        assert (
            mappings[OptimizationLevel.REPLICATED].n_used_clusters
            > mappings[OptimizationLevel.NAIVE].n_used_clusters
        )

    def test_end_to_end_ordering_of_levels(self, resnet, paper_arch):
        """Fig. 5A: each optimisation level improves (or at least preserves) throughput."""
        optimizer = MappingOptimizer(resnet, paper_arch, batch_size=4)
        makespans = {}
        for level in OptimizationLevel.all():
            mapping = optimizer.build(level)
            result = simulate(paper_arch, lower_to_workload(mapping))
            makespans[level] = result.makespan_cycles
        assert makespans[OptimizationLevel.REPLICATED] < makespans[OptimizationLevel.NAIVE]
        assert makespans[OptimizationLevel.FINAL] <= makespans[OptimizationLevel.REPLICATED]

    def test_small_network_on_small_system(self, small_arch=None):
        arch = ArchConfig.scaled(16)
        graph = models.tiny_cnn()
        optimizer = MappingOptimizer(graph, arch, batch_size=2)
        mapping = optimizer.build(OptimizationLevel.FINAL)
        result = simulate(arch, lower_to_workload(mapping))
        assert result.completed
