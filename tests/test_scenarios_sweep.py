"""Tests for the stage pipeline, the sweep engine and the scenarios CLI.

The headline acceptance test lives here: a three-axis sweep (crossbar size
x cluster count x batch size) run through :class:`SweepRunner` — via the
in-process API and via the CLI — produces metrics identical to the
pre-refactor hand-rolled loop over :func:`repro.run_inference`, and a
cache-warm re-run performs zero new ``simulate()`` calls.
"""

import json
import pickle

import pytest

from repro import run_inference
from repro.core import OptimizationLevel
from repro.scenarios import (
    ArtifactCache,
    Scenario,
    ScenarioGrid,
    SweepRunner,
    run_scenario,
    run_sweep,
)
from repro.scenarios import pipeline as pipeline_module
from repro.scenarios.cli import main as cli_main

#: the three-axis acceptance sweep: crossbar size x cluster count x batch.
BASE = Scenario(
    model="tiny_cnn",
    input_shape=(3, 32, 32),
    num_classes=10,
    level="final",
)
GRID = ScenarioGrid.from_axes(
    base=BASE,
    name="acceptance",
    crossbar_size=(128, 256),
    n_clusters=(16, 32),
    batch_size=(2, 4),
)


def numbers(metrics):
    """Every metric value except the display name (labels differ by API)."""
    return {key: value for key, value in metrics.as_record().items() if key != "name"}


def loop_based_sweep():
    """The pre-refactor form: a hand-rolled loop over run_inference."""
    metrics = {}
    for scenario in GRID.expand():
        graph = scenario.build_graph()
        arch = scenario.build_arch()
        report = run_inference(
            graph,
            arch,
            batch_size=scenario.batch_size,
            level=OptimizationLevel.FINAL,
            with_breakdown=False,
        )
        metrics[scenario.label] = report.metrics
    return metrics


class TestPipeline:
    def test_run_scenario_outcome_is_complete(self):
        outcome = run_scenario(BASE.replace(n_clusters=16, batch_size=4))
        assert outcome.simulation.completed
        assert outcome.metrics.throughput_tops > 0
        assert outcome.mapping.n_used_clusters <= 16
        assert outcome.elapsed_s > 0
        assert outcome.label == outcome.scenario.label

    def test_outcome_pickles_and_serializes(self):
        outcome = run_scenario(BASE.replace(n_clusters=16, batch_size=4))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.metrics == outcome.metrics
        payload = json.loads(json.dumps(outcome.as_dict()))
        assert payload["simulation"]["completed"] is True
        assert payload["metrics"]["throughput_tops"] == pytest.approx(
            outcome.metrics.throughput_tops
        )

    def test_cache_shares_work_across_levels(self):
        cache = ArtifactCache()
        for level in ("replicated", "final"):
            run_scenario(BASE.replace(n_clusters=32, level=level), cache)
        # one optimizer (balance pass) served both levels
        assert cache.stats.miss_count("optimizer") == 1
        assert cache.stats.hit_count("optimizer") == 1
        # but the two levels are distinct mappings and simulations
        assert cache.stats.miss_count("mapping") == 2
        assert cache.stats.miss_count("simulation") == 2

    def test_simulation_cache_distinguishes_archs_with_identical_workloads(self):
        """Two archs that lower to identical IR must not share a simulation.

        The simulator reads timing parameters (here the HBM burst size)
        straight from the ArchConfig; the workload IR does not encode them,
        so the simulation key must include the architecture itself.
        """
        import dataclasses

        from repro.arch import ArchConfig, HBMSpec
        from repro.core import OptimizationLevel
        from repro.scenarios import mapping_stage, simulation_stage, workload_stage

        graph = BASE.build_graph()
        cache = ArtifactCache()
        results = {}
        for burst in (64, 4096):
            arch = dataclasses.replace(
                ArchConfig.scaled(16), hbm=HBMSpec(max_burst_bytes=burst)
            )
            mapping = mapping_stage(
                graph, arch, 4, OptimizationLevel.NAIVE, cache=cache
            )
            workload = workload_stage(mapping, cache=cache)
            results[burst] = simulation_stage(arch, workload, cache=cache)
        assert cache.stats.miss_count("simulation") == 2
        assert cache.stats.hit_count("simulation") == 0
        assert results[64].arch.hbm.max_burst_bytes == 64
        assert results[4096].arch.hbm.max_burst_bytes == 4096
        # coarser bursts serve the HBM-staged traffic faster
        assert results[4096].makespan_cycles < results[64].makespan_cycles

    def test_run_inference_with_cache_reuses_simulation(self):
        cache = ArtifactCache()
        scenario = BASE.replace(n_clusters=16, batch_size=4)
        graph, arch = scenario.build_graph(), scenario.build_arch()
        first = run_inference(
            graph, arch, batch_size=4, with_breakdown=False, cache=cache
        )
        second = run_inference(
            graph, arch, batch_size=4, with_breakdown=False, cache=cache
        )
        assert second.result is first.result
        assert cache.stats.miss_count("simulation") == 1
        assert cache.stats.hit_count("simulation") == 1


class TestSweepEquivalence:
    """Acceptance: SweepRunner == the pre-refactor loop, and warm == free."""

    def test_three_axis_sweep_matches_loop_based_sweep(self, monkeypatch):
        expected = loop_based_sweep()

        simulate_calls = []
        real_simulate = pipeline_module.simulate

        def counting_simulate(*args, **kwargs):
            simulate_calls.append(1)
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "simulate", counting_simulate)

        runner = SweepRunner(max_workers=1, cache=ArtifactCache())
        cold = runner.run(GRID)
        assert len(cold) == 8
        cold_calls = len(simulate_calls)
        assert cold_calls == 8  # one simulation per scenario, none extra

        # identical metrics, scenario by scenario, to the hand-rolled loop
        for outcome in cold:
            assert numbers(outcome.metrics) == numbers(expected[outcome.scenario.label])

        # a cache-warm re-run performs ZERO new simulate() calls
        warm = runner.run(GRID)
        assert len(simulate_calls) == cold_calls
        assert runner.cache.stats.hit_count("simulation") == 8
        for before, after in zip(cold, warm):
            assert before.metrics == after.metrics

    def test_parallel_sweep_matches_serial(self):
        scenarios = GRID.expand()[:4]
        serial = SweepRunner(max_workers=1).run(scenarios)
        parallel = SweepRunner(max_workers=2).run(scenarios)
        assert parallel.n_workers in (1, 2)  # 1 only if the pool fell back
        assert [o.scenario for o in parallel] == [o.scenario for o in serial]
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics

    def test_run_sweep_one_call(self):
        result = run_sweep(ScenarioGrid.from_axes(base=BASE.replace(n_clusters=16), batch_size=(2, 4)), max_workers=1)
        assert len(result) == 2
        assert result[0].metrics.batch_size == 2
        assert result.as_dict()["n_workers"] == 1

    def test_empty_sweep(self):
        result = SweepRunner(max_workers=1).run([])
        assert len(result) == 0 and result.n_workers == 0

    def test_infeasible_point_raises_by_default(self):
        # ResNet-18 on 2 clusters cannot be mapped.
        impossible = Scenario(
            model="resnet18", input_shape=(3, 64, 64), n_clusters=2
        )
        with pytest.raises(Exception, match="allocate"):
            SweepRunner(max_workers=1).run([impossible])

    def test_infeasible_point_recorded_when_requested(self):
        impossible = Scenario(
            model="resnet18", input_shape=(3, 64, 64), n_clusters=2
        )
        feasible = BASE.replace(n_clusters=16, batch_size=2)
        runner = SweepRunner(max_workers=1, on_error="record")
        result = runner.run([impossible, feasible])
        assert len(result) == 1
        assert result[0].scenario == feasible
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.scenario == impossible
        assert failure.error_type == "AllocationError"
        assert json.loads(json.dumps(failure.as_dict()))["error_type"] == (
            "AllocationError"
        )

    def test_invalid_error_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepRunner(on_error="ignore")


class TestCLI:
    SPEC = {
        "name": "cli-sweep",
        "base": {
            "model": "tiny_cnn",
            "input_shape": [3, 32, 32],
            "num_classes": 10,
            "n_clusters": 16,
            "level": "final",
        },
        "axes": {"crossbar_size": [128, 256], "batch_size": [2, 4]},
    }

    def _write_spec(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def test_cli_runs_spec_and_writes_json(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "results" / "out.json"
        assert cli_main([str(spec), "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "cli-sweep: 4 scenario(s)" in printed
        assert "tiny_cnn/final/x128/c16/b2" in printed
        payload = json.loads(out.read_text())
        assert payload["name"] == "cli-sweep"
        assert len(payload["outcomes"]) == 4
        assert all(o["simulation"]["completed"] for o in payload["outcomes"])

    def test_cli_matches_in_process_api(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "out.json"
        assert cli_main([str(spec), "--json", str(out)]) == 0
        capsys.readouterr()
        grid = ScenarioGrid.from_axes(
            base=Scenario(**{**self.SPEC["base"], "input_shape": (3, 32, 32)}),
            crossbar_size=(128, 256),
            batch_size=(2, 4),
        )
        api_result = SweepRunner(max_workers=1).run(grid)
        payload = json.loads(out.read_text())
        for cli_outcome, api_outcome in zip(payload["outcomes"], api_result):
            assert cli_outcome["metrics"]["makespan_ms"] == pytest.approx(
                api_outcome.metrics.makespan_ms
            )
            assert cli_outcome["scenario"]["batch_size"] == (
                api_outcome.scenario.batch_size
            )

    def test_cli_list_mode(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert cli_main([str(spec), "--list"]) == 0
        printed = capsys.readouterr().out
        assert printed.count("tiny_cnn/final") == 4

    def test_cli_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"base": {"model": "nope"}}))
        assert cli_main([str(bad)]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_cli_reports_malformed_files_gracefully(self, tmp_path, capsys):
        # TOML syntax error
        broken_toml = tmp_path / "broken.toml"
        broken_toml.write_text("[base\nmodel = ")
        assert cli_main([str(broken_toml)]) == 2
        assert "error:" in capsys.readouterr().err
        # JSON syntax error
        broken_json = tmp_path / "broken.json"
        broken_json.write_text('{"base": {,}}')
        assert cli_main([str(broken_json)]) == 2
        assert "error:" in capsys.readouterr().err
        # well-formed file, badly-typed field
        typed = tmp_path / "typed.json"
        typed.write_text(json.dumps({"base": {"batch_size": "four"}}))
        assert cli_main([str(typed)]) == 2
        assert "error:" in capsys.readouterr().err
        # valid base, invalid axis value (only surfaces at grid expansion)
        bad_axis = tmp_path / "axis.json"
        bad_axis.write_text(
            json.dumps({"base": {"model": "tiny_cnn"}, "axes": {"batch_size": [0, 2]}})
        )
        assert cli_main([str(bad_axis)]) == 2
        assert "batch_size must be positive" in capsys.readouterr().err

    def test_cli_exit_codes_reflect_feasibility(self, tmp_path, capsys):
        # every point infeasible -> exit 1; partially infeasible -> exit 0
        all_bad = tmp_path / "allbad.json"
        all_bad.write_text(
            json.dumps(
                {"base": {"model": "resnet18", "input_shape": [3, 64, 64], "n_clusters": 2}}
            )
        )
        assert cli_main([str(all_bad)]) == 1
        assert "1 infeasible" in capsys.readouterr().out
        partial = tmp_path / "partial.json"
        partial.write_text(
            json.dumps(
                {
                    "base": {
                        "model": "tiny_cnn",
                        "input_shape": [3, 32, 32],
                        "num_classes": 10,
                        "batch_size": 2,
                    },
                    "axes": {"n_clusters": [2, 16]},
                }
            )
        )
        assert cli_main([str(partial)]) == 0
        printed = capsys.readouterr().out
        assert "infeasible" in printed
