"""Tests for the NoC, IMA, cluster and tracer models."""

import pytest

from repro.arch import ArchConfig, ClusterSpec
from repro.sim import (
    ClusterModel,
    Engine,
    IMAJob,
    IMATimingModel,
    L1OverflowError,
    NocModel,
    Tracer,
    TransferRequest,
)


class TestIMATiming:
    @pytest.fixture
    def timing(self):
        return IMATimingModel(ClusterSpec())

    def test_analog_latency_in_cycles(self, timing):
        assert timing.analog_cycles_per_mvm() == 130

    def test_streaming_cycles(self, timing):
        job = IMAJob(n_mvms=1, rows_used=256, cols_used=256)
        assert timing.stream_in_cycles_per_mvm(job) == 16  # 256 B over 16 ports
        assert timing.stream_out_cycles_per_mvm(job) == 32  # 512 B over 16 ports

    def test_double_buffering_hides_streaming(self, timing):
        job = IMAJob(n_mvms=100, rows_used=256, cols_used=256)
        overlapped = timing.job_cycles(job, double_buffering=True)
        sequential = timing.job_cycles(job, double_buffering=False)
        assert overlapped < sequential
        # With 130-cycle analog MVMs and <=32-cycle streams, the analog
        # latency dominates the steady state.
        assert overlapped == pytest.approx(
            timing.spec.config_cycles + 130 * 100 + 16 + 32, abs=1
        )

    def test_empty_job_costs_only_configuration(self, timing):
        job = IMAJob(n_mvms=0, rows_used=1, cols_used=1)
        assert timing.job_cycles(job) == timing.spec.config_cycles

    def test_utilization_bounds(self, timing):
        full = IMAJob(n_mvms=50, rows_used=256, cols_used=256)
        partial = IMAJob(n_mvms=50, rows_used=64, cols_used=64)
        assert 0 < timing.effective_utilization(partial) < timing.effective_utilization(full) <= 1

    def test_macs_count(self):
        job = IMAJob(n_mvms=10, rows_used=100, cols_used=200)
        assert job.macs == 10 * 100 * 200

    def test_invalid_job(self):
        with pytest.raises(ValueError):
            IMAJob(n_mvms=-1, rows_used=1, cols_used=1)
        with pytest.raises(ValueError):
            IMAJob(n_mvms=1, rows_used=0, cols_used=1)


class TestClusterModel:
    def _cluster(self):
        engine = Engine()
        tracer = Tracer()
        return engine, ClusterModel(engine, 0, ClusterSpec(), tracer=tracer)

    def test_analog_job_records_activity(self):
        engine, cluster = self._cluster()
        done = []
        job = IMAJob(n_mvms=10, rows_used=256, cols_used=256)
        cluster.run_analog_job(job, lambda: done.append(engine.now))
        engine.run()
        assert done
        assert cluster.tracer.clusters[0].analog > 0
        assert cluster.tracer.clusters[0].jobs == 1

    def test_digital_kernel_records_activity(self):
        engine, cluster = self._cluster()
        cluster.run_digital_kernel(10_000, lambda: None)
        engine.run()
        assert cluster.tracer.clusters[0].digital > 0

    def test_reduction_kernel_slower_with_more_operands(self):
        engine, cluster = self._cluster()
        few = cluster.run_digital_kernel(30_000, lambda: None, reduction_operands=2)
        many = cluster.run_digital_kernel(30_000, lambda: None, reduction_operands=16)
        assert many >= few

    def test_dma_cycles_and_activity(self):
        engine, cluster = self._cluster()
        cycles = cluster.run_dma(64 * 100, lambda: None)
        assert cycles == cluster.spec.cores.dma_config_cycles + 100
        engine.run()
        assert cluster.tracer.clusters[0].communication > 0

    def test_l1_allocation_and_overflow(self):
        __, cluster = self._cluster()
        cluster.allocate_l1(512 * 1024)
        assert cluster.l1_free == 512 * 1024
        with pytest.raises(L1OverflowError):
            cluster.allocate_l1(600 * 1024)
        cluster.free_l1(512 * 1024)
        assert cluster.l1_allocated == 0
        with pytest.raises(Exception):
            cluster.free_l1(1)


class TestNocModel:
    def _noc(self, arch=None, contention=True):
        engine = Engine()
        arch = arch or ArchConfig.scaled(16)
        return engine, NocModel(engine, arch, model_contention=contention)

    def test_local_transfer_is_free(self):
        engine, noc = self._noc()
        done = []
        noc.transfer(TransferRequest(2, 2, 1024), lambda: done.append(engine.now))
        engine.run()
        assert done == [0]
        assert noc.tracer.local_bytes == 1024

    def test_remote_transfer_latency_and_accounting(self):
        engine, noc = self._noc()
        done = []
        noc.transfer(TransferRequest(0, 15, 6400), lambda: done.append(engine.now))
        engine.run()
        assert done and done[0] >= 100  # serialization + hops
        assert noc.tracer.noc_bytes == 6400
        assert noc.tracer.noc_byte_hops > 6400

    def test_hbm_transfer_uses_channel(self):
        engine, noc = self._noc()
        done = []
        noc.transfer(TransferRequest(0, None, 4096), lambda: done.append(engine.now))
        engine.run()
        assert done
        assert noc.tracer.hbm_bytes == 4096
        assert noc.hbm_busy_cycles() > 0

    def test_contention_delays_second_transfer(self):
        engine, noc = self._noc()
        times = []
        # Two transfers from different sources towards the same destination
        # cluster share the last link and must serialise on it.
        noc.transfer(TransferRequest(0, 3, 64 * 1000), lambda: times.append(engine.now))
        noc.transfer(TransferRequest(1, 3, 64 * 1000), lambda: times.append(engine.now))
        engine.run()
        assert len(times) == 2
        assert times[1] >= times[0] + 900

    def test_no_contention_mode_is_zero_load(self):
        engine, noc = self._noc(contention=False)
        times = []
        noc.transfer(TransferRequest(0, 3, 64 * 10), lambda: times.append(engine.now))
        engine.run()
        request = TransferRequest(0, 3, 64 * 10)
        assert times[0] == noc.estimate_cycles(request)

    def test_estimate_cycles_monotonic_in_size(self):
        __, noc = self._noc()
        small = noc.estimate_cycles(TransferRequest(0, 9, 64))
        large = noc.estimate_cycles(TransferRequest(0, 9, 64 * 100))
        assert large > small

    def test_hbm_burst_cost_reflected_in_estimate(self):
        __, noc = self._noc()
        one_burst = noc.estimate_cycles(TransferRequest(None, 0, 1024))
        four_bursts = noc.estimate_cycles(TransferRequest(None, 0, 4096))
        assert four_bursts > one_burst + 2 * 100

    def test_invalid_request(self):
        with pytest.raises(ValueError):
            TransferRequest(None, None, 10)
        with pytest.raises(ValueError):
            TransferRequest(0, 1, -5)


class TestTracer:
    def test_cluster_accounting(self):
        tracer = Tracer()
        tracer.record_cluster(3, "analog", 100, end_cycle=100)
        tracer.record_cluster(3, "digital", 50, end_cycle=150)
        activity = tracer.clusters[3]
        assert activity.busy == 150
        assert activity.compute == 150
        assert activity.is_analog_bound
        assert activity.sleep(1000) == 850
        assert tracer.makespan == 150

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record_cluster(0, "idle", 10, 10)

    def test_stage_accounting(self):
        tracer = Tracer()
        tracer.record_stage_job(7, start_cycle=10, end_cycle=60, analog_cycles=40, digital_cycles=10)
        tracer.record_stage_job(7, start_cycle=60, end_cycle=110, analog_cycles=40, digital_cycles=10)
        stage = tracer.stages[7]
        assert stage.jobs_completed == 2
        assert stage.busy == 100
        assert stage.active_span == 100

    def test_transfer_accounting(self):
        tracer = Tracer()
        tracer.record_transfer(1000, 4, to_hbm=True, links=("a", "b"), busy_cycles=20)
        tracer.record_transfer(500, 0, local=True)
        assert tracer.noc_bytes == 1000
        assert tracer.hbm_bytes == 1000
        assert tracer.local_bytes == 500
        assert tracer.noc_byte_hops == 4000
        assert tracer.busiest_links(1)[0][0] in ("a", "b")
