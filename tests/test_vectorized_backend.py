"""Equivalence suite: vectorized analog backend vs the per-tile reference.

With noise disabled the two backends must agree to float rounding on every
model in the zoo; with noise enabled (tiles seeded from the same
``SeedSequence``) they draw different but identically distributed streams,
so they must agree statistically.  Shape validation must behave identically
on both backends.
"""

import numpy as np
import pytest

from repro.aimc import (
    AnalogExecutor,
    NoiseModel,
    StackedPCMArray,
    TiledMatrix,
)
from repro.dnn import initialize_parameters, models, random_input

SMALL = (3, 32, 32)

#: every model in repro.dnn.models, built at a size small enough to test.
MODEL_BUILDERS = {
    "tiny_cnn": lambda: models.tiny_cnn(input_shape=SMALL, num_classes=10),
    "linear_cnn": lambda: models.linear_cnn(n_layers=3, input_shape=SMALL, width=16),
    "wide_layer_cnn": lambda: models.wide_layer_cnn(
        input_shape=(16, 8, 8), channels=96, num_classes=10
    ),
    "residual_chain": lambda: models.residual_chain(n_blocks=2, input_shape=SMALL),
    "mlp": lambda: models.mlp(input_features=96, hidden=160, n_hidden_layers=2),
    "mobilenet_v2": lambda: models.mobilenet_v2(
        input_shape=SMALL, num_classes=10, width_multiplier=0.5
    ),
    "resnet18": lambda: models.resnet18(input_shape=SMALL, num_classes=10),
    "resnet34": lambda: models.resnet34(input_shape=SMALL, num_classes=10),
    "resnet_cifar": lambda: models.resnet_cifar(depth=8),
    "vgg11": lambda: models.vgg11(input_shape=SMALL, num_classes=10, classifier_width=64),
    "vgg13": lambda: models.vgg13(input_shape=SMALL, num_classes=10, classifier_width=64),
    "vgg16": lambda: models.vgg16(input_shape=SMALL, num_classes=10, classifier_width=64),
}


def test_every_zoo_model_is_covered():
    assert set(MODEL_BUILDERS) == set(models.__all__)


class TestNoiseFreeEquivalence:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_backends_identical_without_noise(self, name):
        graph = MODEL_BUILDERS[name]()
        parameters = initialize_parameters(graph, seed=0)
        image = random_input(graph, seed=1)
        outputs = {}
        for backend in ("reference", "vectorized"):
            executor = AnalogExecutor(
                graph,
                parameters=parameters,
                noise=NoiseModel.ideal(),
                crossbar_rows=128,
                crossbar_cols=128,
                seed=0,
                backend=backend,
            )
            outputs[backend] = executor.run_output(image)
        assert np.allclose(
            outputs["reference"], outputs["vectorized"], rtol=0.0, atol=1e-12
        )

    @pytest.mark.parametrize(
        "shape,crossbar",
        [
            ((40, 30), 64),  # single tile, smaller than the crossbar
            ((128, 128), 64),  # exact multi-tile grid
            ((300, 190), 128),  # ragged grid: right, bottom and corner groups
            ((130, 70), 64),  # ragged on both axes
        ],
    )
    def test_tiled_mvm_matches_reference_and_matmul(self, shape, crossbar):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=shape)
        batch = rng.normal(size=(5, shape[0]))
        results = {}
        for backend in ("reference", "vectorized"):
            tiled = TiledMatrix(
                weights,
                crossbar_rows=crossbar,
                crossbar_cols=crossbar,
                noise=NoiseModel.ideal(),
                seed=7,
                backend=backend,
            )
            results[backend] = tiled.mvm(batch)
        assert np.allclose(results["reference"], results["vectorized"], atol=1e-12)
        assert np.allclose(results["vectorized"], batch @ weights, atol=1e-9)

    def test_single_vector_input_shape(self):
        weights = np.random.default_rng(1).normal(size=(100, 60))
        x = np.random.default_rng(2).normal(size=100)
        tiled = TiledMatrix(
            weights, crossbar_rows=64, crossbar_cols=64,
            noise=NoiseModel.ideal(), backend="vectorized",
        )
        assert tiled.mvm(x).shape == (60,)


class TestNoisyEquivalence:
    def test_backends_statistically_close(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(200, 150))
        batch = rng.normal(size=(16, 200))
        golden = batch @ weights
        errors = {}
        for backend in ("reference", "vectorized"):
            tiled = TiledMatrix(
                weights,
                crossbar_rows=64,
                crossbar_cols=64,
                noise=NoiseModel.typical(),
                seed=11,
                backend=backend,
            )
            output = tiled.mvm(batch)
            errors[backend] = np.linalg.norm(output - golden) / np.linalg.norm(golden)
        # both backends approximate the digital result with the same noise
        # budget; neither may be wildly off nor suspiciously exact.
        for backend, error in errors.items():
            assert 0.0 < error < 0.3, f"{backend} error {error}"
        assert abs(errors["reference"] - errors["vectorized"]) < 0.1

    def test_noisy_executor_close_to_reference_backend(self, tiny_graph):
        parameters = initialize_parameters(tiny_graph, seed=0)
        image = random_input(tiny_graph, seed=1)
        outputs = {}
        for backend in ("reference", "vectorized"):
            executor = AnalogExecutor(
                tiny_graph,
                parameters=parameters,
                noise=NoiseModel.typical(),
                crossbar_rows=64,
                crossbar_cols=64,
                seed=0,
                backend=backend,
            )
            outputs[backend] = executor.run_output(image)
        scale = float(np.abs(outputs["reference"]).max())
        diff = float(np.abs(outputs["reference"] - outputs["vectorized"]).max())
        assert diff < 0.5 * scale + 0.5

    def test_read_noise_varies_between_calls_on_both_backends(self):
        weights = np.random.default_rng(3).normal(size=(96, 96))
        x = np.random.default_rng(4).normal(size=(4, 96))
        for backend in ("reference", "vectorized"):
            tiled = TiledMatrix(
                weights, crossbar_rows=64, crossbar_cols=64,
                noise=NoiseModel.typical(), seed=5, backend=backend,
            )
            assert not np.allclose(tiled.mvm(x), tiled.mvm(x)), backend


class TestShapeValidation:
    def test_mvm_rejects_wrong_length_identically(self):
        weights = np.ones((50, 40))
        messages = {}
        for backend in ("reference", "vectorized"):
            tiled = TiledMatrix(
                weights, crossbar_rows=32, crossbar_cols=32,
                noise=NoiseModel.ideal(), backend=backend,
            )
            with pytest.raises(ValueError) as excinfo:
                tiled.mvm(np.ones(49))
            messages[backend] = str(excinfo.value)
        assert messages["reference"] == messages["vectorized"]

    def test_batched_mvm_rejects_wrong_length_identically(self):
        weights = np.ones((50, 40))
        for backend in ("reference", "vectorized"):
            tiled = TiledMatrix(
                weights, crossbar_rows=32, crossbar_cols=32,
                noise=NoiseModel.ideal(), backend=backend,
            )
            with pytest.raises(ValueError):
                tiled.mvm(np.ones((3, 51)))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            TiledMatrix(np.ones((4, 4)), backend="gpu")
        with pytest.raises(ValueError):
            AnalogExecutor(MODEL_BUILDERS["tiny_cnn"](), backend="gpu")

    def test_non_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            TiledMatrix(np.ones((2, 2, 2)))

    def test_per_tile_objects_only_on_reference_backend(self):
        weights = np.ones((50, 40))
        reference = TiledMatrix(
            weights, crossbar_rows=32, crossbar_cols=32,
            noise=NoiseModel.ideal(), backend="reference",
        )
        assert len(reference.tiles) == reference.n_crossbars
        vectorized = TiledMatrix(
            weights, crossbar_rows=32, crossbar_cols=32,
            noise=NoiseModel.ideal(), backend="vectorized",
        )
        with pytest.raises(RuntimeError, match="reference"):
            vectorized.tiles
        assert len(vectorized.tile_coordinates) == vectorized.n_crossbars


class TestDeviceStateCache:
    def test_deterministic_read_serves_cached_tensor(self):
        array = StackedPCMArray((2, 2), 8, 8, seed=0)
        array.program(np.random.default_rng(0).normal(size=(2, 2, 8, 8)), ideal=True)
        first = array.effective_weights(time_s=100.0, read_noise=False)
        second = array.effective_weights(time_s=100.0, read_noise=False)
        assert first is second

    def test_cache_invalidated_by_drift_time_change(self):
        array = StackedPCMArray((1, 1), 8, 8, seed=0)
        array.program(np.abs(np.random.default_rng(1).normal(size=(1, 1, 8, 8))), ideal=True)
        fresh = array.effective_weights(time_s=None)
        drifted = array.effective_weights(time_s=1e6)
        assert fresh is not drifted
        assert np.linalg.norm(drifted) < np.linalg.norm(fresh)

    def test_cache_invalidated_by_reprogram(self):
        array = StackedPCMArray((1, 2), 4, 4, seed=0)
        weights = np.random.default_rng(2).normal(size=(1, 2, 4, 4))
        array.program(weights, ideal=True)
        before = array.effective_weights()
        array.program(2.0 * weights, ideal=True)
        after = array.effective_weights()
        assert before is not after
        assert np.allclose(after, 2.0 * before)

    def test_read_noise_bypasses_cache(self):
        array = StackedPCMArray((2, 1), 8, 8, seed=3)
        array.program(np.random.default_rng(3).normal(size=(2, 1, 8, 8)), ideal=True)
        cached = array.effective_weights()
        noisy_a = array.effective_weights(read_noise=True)
        noisy_b = array.effective_weights(read_noise=True)
        assert noisy_a is not cached and noisy_b is not cached
        assert not np.allclose(noisy_a, noisy_b)
        # the deterministic cache survives noisy reads
        assert array.effective_weights() is cached

    def test_ideal_programming_matches_targets(self):
        weights = np.random.default_rng(4).normal(size=(3, 2, 6, 5))
        array = StackedPCMArray((3, 2), 6, 5, seed=0)
        array.program(weights, ideal=True)
        assert np.allclose(array.effective_weights(), weights, atol=1e-12)

    def test_unprogrammed_read_raises(self):
        with pytest.raises(RuntimeError):
            StackedPCMArray((1, 1), 4, 4).effective_weights()

    def test_shape_mismatch_rejected(self):
        array = StackedPCMArray((2, 2), 4, 4)
        with pytest.raises(ValueError):
            array.program(np.ones((2, 2, 4, 5)))


class TestSeeding:
    def test_adjacent_layers_draw_distinct_programming_noise(self):
        """The old ``seed + node_id`` / ``31*row + col`` scheme collided
        across layers; SeedSequence spawning must not."""
        noise = NoiseModel(
            programming_noise=True, read_noise=False, converter_quantization=False
        )
        weights = np.random.default_rng(5).normal(size=(64, 64))
        x = np.random.default_rng(6).normal(size=64)
        outputs = []
        for seed in (0, 1):
            for backend in ("reference", "vectorized"):
                tiled = TiledMatrix(
                    weights, crossbar_rows=64, crossbar_cols=64,
                    noise=noise, seed=seed, backend=backend,
                )
                outputs.append(tiled.mvm(x))
        # four independently seeded programmings: all pairwise distinct
        for i in range(len(outputs)):
            for j in range(i + 1, len(outputs)):
                assert not np.allclose(outputs[i], outputs[j]), (i, j)

    def test_compare_with_reference_cache_consistent(self, tiny_graph):
        parameters = initialize_parameters(tiny_graph, seed=0)
        image = random_input(tiny_graph, seed=1)
        executor = AnalogExecutor(
            tiny_graph,
            parameters=parameters,
            noise=NoiseModel.ideal(),
            crossbar_rows=64,
            crossbar_cols=64,
            backend="vectorized",
        )
        first = executor.compare_with_reference(image)
        second = executor.compare_with_reference(image)
        assert first == second < 1e-9
        other = random_input(tiny_graph, seed=2)
        assert executor.compare_with_reference(other) < 1e-9
