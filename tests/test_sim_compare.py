"""Mutation tests for the bit-identity comparator (:mod:`repro.sim.compare`).

``result_mismatches`` is the single definition of "bit-identical" that the
kernel-equivalence and fast-forward suites rely on; a comparator that
silently ignores an observable would let a divergent kernel pass the whole
matrix.  Each test here injects one specific corruption into an otherwise
identical pair of results — a counter off by one, a dropped stage
completion, a reordered trace, a shuffled dict insertion order — and
asserts the comparator names exactly that observable.
"""

import pytest

from repro.sim import assert_results_identical, result_mismatches, simulate

from test_sim_fast_forward import ARCH64, _chain


@pytest.fixture()
def pair():
    """Two independently simulated, bit-identical results of one workload."""
    workload = _chain(n_jobs=12)
    return (
        simulate(ARCH64, workload, engine="array"),
        simulate(ARCH64, workload, engine="array"),
    )


class TestIdentity:
    def test_independent_runs_are_bit_identical(self, pair):
        reference, mutant = pair
        assert result_mismatches(reference, mutant) == []
        assert_results_identical(reference, mutant)

    def test_provenance_flag_is_checked_unless_ignored(self, pair):
        reference, mutant = pair
        mutant.fast_forwarded = True
        mismatches = result_mismatches(reference, mutant)
        assert len(mismatches) == 1 and "fast_forwarded" in mismatches[0]
        assert result_mismatches(reference, mutant, ignore_provenance=True) == []


class TestInjectedMutations:
    def test_counter_off_by_one_caught(self, pair):
        reference, mutant = pair
        mutant.tracer.hbm_bytes += 1
        mismatches = result_mismatches(reference, mutant)
        assert any("tracer.hbm_bytes" in m for m in mismatches)

    def test_makespan_off_by_one_caught(self, pair):
        reference, mutant = pair
        mutant.makespan_cycles += 1
        mismatches = result_mismatches(reference, mutant)
        assert any("makespan_cycles" in m for m in mismatches)

    def test_dropped_stage_completion_caught(self, pair):
        reference, mutant = pair
        sid = next(iter(mutant.tracer.stage_completions))
        mutant.tracer.stage_completions[sid].pop()
        mismatches = result_mismatches(reference, mutant)
        assert any(f"tracer.stage_completions[{sid}]" in m for m in mismatches)

    def test_reordered_trace_caught(self, pair):
        """Two completions swapped in place: same multiset, wrong order."""
        reference, mutant = pair
        completions = None
        for sid, trace in mutant.tracer.stage_completions.items():
            if len(trace) >= 2 and trace[0] != trace[-1]:
                completions = (sid, trace)
                break
        assert completions is not None, "fixture workload has no reorderable trace"
        sid, trace = completions
        trace[0], trace[-1] = trace[-1], trace[0]
        mismatches = result_mismatches(reference, mutant)
        assert any(f"tracer.stage_completions[{sid}]" in m for m in mismatches)

    def test_shuffled_cluster_insertion_order_caught(self, pair):
        """Same clusters, same activity, reversed dict order: the payload
        serialises insertion order, so the comparator must flag it."""
        reference, mutant = pair
        tracer = mutant.tracer
        assert len(tracer.clusters) >= 2
        tracer.clusters = dict(reversed(list(tracer.clusters.items())))
        mismatches = result_mismatches(reference, mutant)
        assert any("tracer.clusters order" in m for m in mismatches)

    def test_cluster_activity_drift_caught(self, pair):
        reference, mutant = pair
        cid = next(iter(mutant.tracer.clusters))
        mutant.tracer.clusters[cid].analog += 1
        mismatches = result_mismatches(reference, mutant)
        assert any(f"tracer.clusters[{cid}]" in m for m in mismatches)

    def test_link_busy_drift_caught(self, pair):
        reference, mutant = pair
        link = next(iter(mutant.tracer.link_busy))
        mutant.tracer.link_busy[link] += 1
        mismatches = result_mismatches(reference, mutant)
        assert any("tracer.link_busy" in m for m in mismatches)

    def test_assert_helper_names_the_observable(self, pair):
        reference, mutant = pair
        mutant.tracer.n_transfers += 1
        with pytest.raises(AssertionError, match="tracer.n_transfers"):
            assert_results_identical(reference, mutant)
