"""Bit-identity harness: array-native kernel vs object kernel.

The array kernel (``engine="array"``) is a pure performance mechanism —
typed event rows, flat link busy-until vectors, fused DMA fan-out.  Its
acceptance contract is *bit-identical results*: for every workload, every
contention mode and every buffer depth, ``simulate(engine="array")`` must
return exactly what ``simulate(engine="python")`` returns, down to the
per-stage completion traces and per-link busy counters.  The comparison
runs through :func:`repro.sim.result_mismatches`, which enumerates every
observable of a :class:`~repro.sim.SimulationResult` and reports the first
divergence by name.

Three layers of coverage:

* the synthetic pipelines and model-zoo mappings shared with the
  fast-forward suite (known shapes: replication, residual storage, HBM
  endpoints, periodic and non-periodic pipelines);
* a seeded randomized property sweep over small pipelines — stage counts,
  costs, byte sizes, replication widths, storage flows, buffer depths and
  contention drawn from a fixed-seed RNG, so a kernel divergence on an
  unanticipated shape shows up here first (and reproducibly);
* the fast-forward path on top of the array kernel, which exercises the
  bounded (``max_events``/``until``) run paths the unbounded batch loop
  does not touch.
"""

import random

import pytest

from repro.scenarios.fingerprint import simulation_key
from repro.sim import (
    BurstyArrivals,
    DataFlow,
    DeterministicArrivals,
    PoissonArrivals,
    StageCost,
    StageDescriptor,
    Workload,
    assert_results_identical,
    result_mismatches,
    simulate,
)

from test_sim_fast_forward import ARCH64, SYNTHETIC, ZOO, _chain, _zoo_workload


# --------------------------------------------------------------------------- #
# Known shapes: the fast-forward suite's synthetic + zoo workloads
# --------------------------------------------------------------------------- #
class TestKnownShapes:
    @pytest.mark.parametrize(
        "name,workload,_must_engage",
        SYNTHETIC,
        ids=[case[0] for case in SYNTHETIC],
    )
    @pytest.mark.parametrize("model_contention", [True, False], ids=["cont", "nocont"])
    def test_synthetic_pipelines_identical(self, name, workload, _must_engage,
                                           model_contention):
        python = simulate(ARCH64, workload, model_contention, engine="python")
        array = simulate(ARCH64, workload, model_contention, engine="array")
        assert result_mismatches(python, array) == []

    @pytest.mark.parametrize(
        "name,model,shape,level,batch,clusters,classes,crossbar,_must_engage",
        ZOO,
        ids=[case[0] for case in ZOO],
    )
    def test_zoo_mappings_identical(
        self, name, model, shape, level, batch, clusters, classes, crossbar,
        _must_engage,
    ):
        arch, workload = _zoo_workload(
            model, shape, level, batch, clusters, classes, crossbar
        )
        python = simulate(arch, workload, engine="python")
        array = simulate(arch, workload, engine="array")
        assert_results_identical(python, array)

    def test_payloads_identical_including_stage_completions(self):
        """The persisted payloads — the cache currency — match exactly.

        The tracer ships inside the payload as a live object, so it is
        compared field by field through ``result_mismatches`` (which covers
        every counter, trace and busy map) and the remaining payload
        entries by plain equality.
        """
        arch, workload = _zoo_workload("tiny_cnn", (3, 32, 32), "final", 16, 16, 10, 128)
        python = simulate(arch, workload, engine="python")
        array = simulate(arch, workload, engine="array")
        assert result_mismatches(python, array) == []
        python_payload = python.to_payload()
        array_payload = array.to_payload()
        assert type(python_payload.pop("tracer")) is type(array_payload.pop("tracer"))
        assert python_payload == array_payload


# --------------------------------------------------------------------------- #
# Seeded randomized property sweep
# --------------------------------------------------------------------------- #
def _random_workload(rng: random.Random) -> Workload:
    """A random small pipeline drawn from the space the simulator supports.

    Shapes vary across every axis the kernels treat differently: stage
    count, per-stage replication width, analog cost, transfer sizes (tiny
    transfers exercise the ``max(1, ...)`` chunking edge), residual
    storage flows with their own buffer depths, and job counts that do and
    do not divide the batch size.
    """
    n_stages = rng.randint(2, 5)
    n_jobs = rng.choice([7, 12, 24, 31, 48])
    bytes_per_job = rng.choice([1, 5, 260, 2048, 5000])
    analog = rng.choice([0, 17, 400])
    cluster = 0
    stages = []
    storage_stage = rng.randrange(n_stages - 1) if rng.random() < 0.5 else None
    for i in range(n_stages):
        inputs = (
            (DataFlow("hbm", bytes_per_job, label="in"),)
            if i == 0
            else (DataFlow("stage", bytes_per_job, stage_id=i - 1),)
        )
        outputs = (
            (DataFlow("hbm", bytes_per_job, label="out"),)
            if i == n_stages - 1
            else (DataFlow("stage", bytes_per_job, stage_id=i + 1),)
        )
        if storage_stage == i:
            depth = rng.choice([1, 4])
            outputs = outputs + (
                DataFlow("storage", bytes_per_job, storage_cluster=63,
                         label="res", buffer_depth=depth),
            )
        if storage_stage is not None and i == n_stages - 1:
            inputs = inputs + (
                DataFlow("storage", bytes_per_job, storage_cluster=63,
                         label="res", buffer_depth=4),
            )
        replication = rng.choice([1, 1, 2, 3])
        replicas = tuple(
            tuple(cluster + r * 2 + c for c in range(rng.choice([1, 2])))
            for r in range(replication)
        )
        cluster += 2 * replication + 1
        stages.append(
            StageDescriptor(
                stage_id=i,
                name=f"s{i}",
                analog_replicas=replicas,
                cost=StageCost(
                    analog_cycles_per_job=analog,
                    digital_cycles_per_job=rng.choice([0, 90]),
                    analog_macs_per_job=100,
                ),
                inputs=inputs,
                outputs=outputs,
            )
        )
    return Workload(
        "random",
        stages,
        n_jobs=n_jobs,
        batch_size=max(1, n_jobs // rng.choice([1, 3, 4])),
        tiles_per_image=rng.choice([1, 4]),
        total_macs=100 * n_jobs * n_stages,
    )


class TestRandomizedProperty:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_pipelines_identical(self, seed):
        rng = random.Random(1000 + seed)
        workload = _random_workload(rng)
        model_contention = rng.random() < 0.7
        buffer_depth = rng.choice([1, 2, 5])
        python = simulate(
            ARCH64, workload, model_contention, buffer_depth, engine="python"
        )
        array = simulate(
            ARCH64, workload, model_contention, buffer_depth, engine="array"
        )
        mismatches = result_mismatches(python, array)
        assert mismatches == [], f"seed {seed}: {mismatches}"


# --------------------------------------------------------------------------- #
# Open-system workloads: arrival-gated launch across the full engine matrix
# --------------------------------------------------------------------------- #
def _random_arrivals(rng: random.Random, n_jobs: int):
    """A random arrival schedule drawn across process kind, rate and seed.

    Rates span well below the service rate (launch gating dominates),
    around it, and far above it (the schedule degenerates to a burst and
    the open run must still match a closed one event for event).
    """
    kind = rng.choice(["deterministic", "poisson", "bursty"])
    if kind == "deterministic":
        process = DeterministicArrivals(
            interval_cycles=rng.choice([0, 40, 700, 6000]),
            start_cycle=rng.choice([0, 0, 250]),
        )
    elif kind == "poisson":
        process = PoissonArrivals(
            mean_interarrival_cycles=rng.choice([50.0, 800.0, 5000.0]),
            seed=rng.randrange(1 << 16),
        )
    else:
        process = BurstyArrivals(
            burst_size=rng.choice([2, 5, 16]),
            burst_interval_cycles=rng.choice([0, 900, 9000]),
        )
    return process.generate(n_jobs)


class TestOpenWorkloadEquivalence:
    """Bit-identity of all three kernels under arrival-gated job launch."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_open_pipelines_identical_across_engines(self, seed):
        rng = random.Random(7000 + seed)
        workload = _random_workload(rng)
        workload = workload.with_arrivals(_random_arrivals(rng, workload.n_jobs))
        assert workload.is_open
        model_contention = rng.random() < 0.7
        buffer_depth = rng.choice([1, 2, 5])
        results = {
            engine: simulate(
                ARCH64, workload, model_contention, buffer_depth, engine=engine
            )
            for engine in ("python", "array", "table")
        }
        for engine in ("array", "table"):
            mismatches = result_mismatches(results["python"], results[engine])
            assert mismatches == [], f"seed {seed}, {engine}: {mismatches}"
        # every job's sojourn was recorded, identically, on every engine
        latencies = results["python"].request_latencies()
        assert len(latencies) == workload.n_jobs
        assert all(lat > 0 for lat in latencies)
        for engine in ("array", "table"):
            assert results[engine].request_latencies() == latencies

    def test_open_zoo_mapping_identical_across_engines(self):
        """A real mapped model (not a synthetic chain) under Poisson load."""
        arch, workload = _zoo_workload(
            "tiny_cnn", (3, 32, 32), "final", 16, 16, 10, 128
        )
        workload = workload.with_arrivals(
            PoissonArrivals(mean_interarrival_cycles=30000.0, seed=11).generate(
                workload.n_jobs
            )
        )
        python = simulate(arch, workload, engine="python")
        array = simulate(arch, workload, engine="array")
        table = simulate(arch, workload, engine="table")
        assert result_mismatches(python, array) == []
        assert result_mismatches(python, table) == []


# --------------------------------------------------------------------------- #
# Bounded runs: the fast-forward probe on top of the array kernel
# --------------------------------------------------------------------------- #
class TestBoundedRunEquivalence:
    @pytest.mark.parametrize(
        "name,workload,must_engage",
        SYNTHETIC,
        ids=[case[0] for case in SYNTHETIC],
    )
    def test_fast_forward_on_array_kernel(self, name, workload, must_engage):
        """FF probing uses until/max_events bounds: exact mid-batch
        truncation with in-order resume must hold on the array kernel too."""
        full = simulate(ARCH64, workload, engine="array")
        ff = simulate(ARCH64, workload, fast_forward=True, engine="array")
        if must_engage:
            assert ff.fast_forwarded, f"{name}: fast-forward failed to engage"
        assert result_mismatches(full, ff, ignore_provenance=True) == []

    def test_fast_forward_identical_across_kernels(self):
        workload = _chain(n_jobs=96, replication=2)
        python = simulate(ARCH64, workload, fast_forward=True, engine="python")
        array = simulate(ARCH64, workload, fast_forward=True, engine="array")
        assert python.fast_forwarded and array.fast_forwarded
        assert result_mismatches(python, array) == []


# --------------------------------------------------------------------------- #
# Cache keying of the engine axis
# --------------------------------------------------------------------------- #
class TestEngineCacheKey:
    def test_engines_key_separately(self):
        base = simulation_key("a", "w", True, 2)
        assert simulation_key("a", "w", True, 2, engine="array") == base
        assert simulation_key("a", "w", True, 2, engine="python") != base

    def test_engine_and_fast_forward_axes_are_independent(self):
        keys = {
            simulation_key("a", "w", True, 2, fast_forward=ff, engine=engine)
            for ff in (False, True)
            for engine in ("array", "python")
        }
        assert len(keys) == 4

    def test_arrivals_axis_keys_separately(self):
        base = simulation_key("a", "w", True, 2)
        assert simulation_key("a", "w", True, 2, arrivals=None) == base
        open_key = simulation_key("a", "w", True, 2, arrivals=(0, 10, 20))
        assert open_key != base
        assert simulation_key("a", "w", True, 2, arrivals=(0, 10, 21)) != open_key
        assert simulation_key("a", "w", True, 2, arrivals=(0, 10, 20)) == open_key
