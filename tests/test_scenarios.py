"""Tests for the scenario specs, content fingerprints and artifact cache."""

import dataclasses
import json

import pytest

from repro.arch import ArchConfig
from repro.core import OptimizationLevel
from repro.scenarios import (
    ArtifactCache,
    Scenario,
    ScenarioGrid,
    SpecError,
    canonicalize,
    fingerprint,
    load_spec,
    parse_spec,
)

#: a fast scenario used throughout (16-cluster system, 32x32 inputs).
TINY = Scenario(
    model="tiny_cnn",
    input_shape=(3, 32, 32),
    num_classes=10,
    n_clusters=16,
    batch_size=4,
    level="final",
)


class TestScenarioSpec:
    def test_defaults_target_the_paper_system(self):
        scenario = Scenario()
        assert scenario.targets_paper_arch
        assert scenario.build_arch() == ArchConfig.paper()
        assert scenario.level_enum is OptimizationLevel.FINAL

    def test_any_arch_axis_switches_to_scaled(self):
        assert not TINY.targets_paper_arch
        arch = TINY.build_arch()
        assert arch.n_clusters == 16
        assert arch.ima.rows == 256
        assert Scenario(crossbar_size=128).build_arch().ima.rows == 128

    def test_build_graph_resolves_model_zoo(self):
        graph = TINY.build_graph()
        assert len(graph) > 0
        assert graph.input_nodes[0].layer.shape.channels == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(SpecError, match="unknown model"):
            Scenario(model="transformer9000")

    def test_unknown_level_rejected(self):
        with pytest.raises(SpecError, match="unknown optimisation level"):
            Scenario(level="ultimate")

    def test_invalid_shapes_and_counts_rejected(self):
        with pytest.raises(SpecError):
            Scenario(input_shape=(3, 32))
        with pytest.raises(SpecError):
            Scenario(batch_size=0)
        with pytest.raises(SpecError):
            Scenario(n_clusters=-1)
        with pytest.raises(SpecError):
            Scenario(buffer_depth=0)

    def test_label_and_replace(self):
        assert TINY.label == "tiny_cnn/final/x256/c16/b4"
        named = TINY.replace(name="headline")
        assert named.label == "headline"
        assert named.replace(batch_size=8).batch_size == 8

    def test_as_dict_is_json_safe(self):
        payload = json.loads(json.dumps(TINY.as_dict()))
        assert payload["model"] == "tiny_cnn"
        assert payload["input_shape"] == [3, 32, 32]


class TestScenarioGrid:
    def test_expansion_is_cartesian_and_ordered(self):
        grid = ScenarioGrid.from_axes(
            base=TINY, crossbar_size=(128, 256), batch_size=(2, 4, 8)
        )
        scenarios = grid.expand()
        assert len(grid) == 6 and len(scenarios) == 6
        # last axis varies fastest
        assert [s.batch_size for s in scenarios[:3]] == [2, 4, 8]
        assert {s.crossbar_size for s in scenarios[:3]} == {128}

    def test_empty_axes_yield_the_base(self):
        assert ScenarioGrid(base=TINY).expand() == [TINY]

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="unknown sweep axis"):
            ScenarioGrid.from_axes(base=TINY, warp_factor=(1, 2))

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="no values"):
            ScenarioGrid.from_axes(base=TINY, batch_size=())


class TestSpecFiles:
    PAYLOAD = {
        "name": "dse",
        "base": {
            "model": "tiny_cnn",
            "input_shape": [3, 32, 32],
            "num_classes": 10,
            "level": "final",
        },
        "axes": {"crossbar_size": [128, 256], "batch_size": [2, 4]},
    }

    def test_parse_spec(self):
        grid = parse_spec(self.PAYLOAD)
        assert grid.name == "dse"
        assert len(grid) == 4
        assert grid.base.model == "tiny_cnn"

    def test_load_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert len(load_spec(path)) == 4

    def test_load_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "dse"',
                    "[base]",
                    'model = "tiny_cnn"',
                    "input_shape = [3, 32, 32]",
                    "num_classes = 10",
                    "[axes]",
                    "crossbar_size = [128, 256]",
                    "batch_size = [2, 4]",
                ]
            )
        )
        grid = load_spec(path)
        assert len(grid) == 4
        assert grid.base.input_shape == (3, 32, 32)

    def test_unknown_field_and_format_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="unknown scenario field"):
            parse_spec({"base": {"modle": "tiny_cnn"}})
        with pytest.raises(SpecError, match="unknown spec section"):
            parse_spec({"base": {}, "axis": {"batch_size": [2]}})
        bad = tmp_path / "sweep.yaml"
        bad.write_text("a: 1")
        with pytest.raises(SpecError, match="unsupported spec format"):
            load_spec(bad)
        with pytest.raises(SpecError, match="does not exist"):
            load_spec(tmp_path / "missing.toml")


class TestFingerprints:
    """Cache-key stability: the correctness contract of the artifact cache."""

    def test_same_spec_same_fingerprint(self):
        a = Scenario(model="tiny_cnn", input_shape=(3, 32, 32), batch_size=4)
        b = Scenario(model="tiny_cnn", input_shape=(3, 32, 32), batch_size=4)
        assert a is not b
        assert fingerprint(a) == fingerprint(b)

    def test_any_field_change_changes_the_fingerprint(self):
        base = TINY
        changed = {
            "model": "mlp",
            "input_shape": (3, 32, 31),
            "num_classes": 12,
            "batch_size": 5,
            "level": "naive",
            "mapping": "replicated",
            "n_clusters": 17,
            "crossbar_size": 128,
            "cores_per_cluster": 8,
            "reserve_clusters": 5,
            "max_replication": 32,
            "model_contention": False,
            "buffer_depth": 3,
            "fast_forward": True,
            "engine": "python",
            "arrivals": {"process": "deterministic", "interval_cycles": 100},
            "execution": "typical",
            "name": "renamed",
        }
        # every Scenario field is covered by this test
        assert set(changed) == {f.name for f in dataclasses.fields(Scenario)}
        reference = fingerprint(base)
        for field_name, new_value in changed.items():
            mutated = base.replace(**{field_name: new_value})
            assert fingerprint(mutated) != reference, field_name

    def test_equal_graphs_and_archs_fingerprint_equal(self):
        assert fingerprint(TINY.build_graph()) == fingerprint(TINY.build_graph())
        assert fingerprint(ArchConfig.scaled(16)) == fingerprint(ArchConfig.scaled(16))
        assert fingerprint(ArchConfig.scaled(16)) != fingerprint(ArchConfig.scaled(32))

    def test_arch_key_ignores_cosmetic_name(self):
        from repro.scenarios.fingerprint import arch_key

        # paper() and scaled(512, 256, 16) describe the same hardware and
        # differ only in their display name: they must share cache keys.
        assert arch_key(ArchConfig.paper()) == arch_key(ArchConfig.scaled(512))
        assert arch_key(ArchConfig.scaled(16, name="a")) == arch_key(
            ArchConfig.scaled(16, name="b")
        )
        assert arch_key(ArchConfig.scaled(16)) != arch_key(ArchConfig.scaled(32))

    def test_content_digest_memoizes_and_tracks_graph_edits(self):
        from repro.dnn.layers import ReLU
        from repro.scenarios.fingerprint import content_digest

        graph = TINY.build_graph()
        first = content_digest(graph)
        assert content_digest(graph) == first == fingerprint(graph)
        # structural edits invalidate the memo
        graph.add(ReLU(name="extra"), inputs=[graph.output_nodes[0].node_id])
        assert content_digest(graph) != first
        assert content_digest(graph) == fingerprint(graph)

    def test_graph_structure_changes_fingerprint(self):
        deeper = TINY.replace(input_shape=(3, 64, 64))
        assert fingerprint(TINY.build_graph()) != fingerprint(deeper.build_graph())

    def test_fingerprint_is_stable_across_shape_inference(self):
        graph = TINY.build_graph()
        before = fingerprint(graph)
        graph.infer_shapes()
        assert fingerprint(graph) == before

    def test_canonicalize_distinguishes_containers_and_keys(self):
        # regression: tuples and lists used to render identically, so
        # (1, 2) and [1, 2] collided — violating the injectivity contract
        # the cache's correctness (and every persisted key) rests on.
        assert canonicalize((1, 2)) != canonicalize([1, 2])
        assert fingerprint((1, 2)) != fingerprint([1, 2])
        assert fingerprint(((1,), 2)) != fingerprint(([1], 2))
        assert fingerprint({"k": (1, 2)}) != fingerprint({"k": [1, 2]})
        assert fingerprint({(1, 2), 3}) != fingerprint({(1,), (2, 3)})
        assert fingerprint(()) != fingerprint([])
        assert fingerprint({1: "a"}) != fingerprint({"1": "a"})
        assert fingerprint({"x": 1, "y": 2}) == fingerprint({"y": 2, "x": 1})
        assert fingerprint(1.0) != fingerprint(1)

    def test_tuple_and_list_contents_still_compare_equal(self):
        # same element sequence, same container kind: order-sensitive match
        assert fingerprint([1, 2]) == fingerprint([1, 2])
        assert fingerprint((1, 2)) == fingerprint((1, 2))
        assert fingerprint((1, 2)) != fingerprint((2, 1))

    def test_arch_key_memoizes_on_the_original_object(self):
        """arch_key must not re-canonicalise the config on every call.

        It used to build a name-stripped copy with dataclasses.replace on
        each invocation, defeating memoization: every stage key paid a full
        ArchConfig canonicalisation.  The digest is now memoized on the
        (frozen) original.
        """
        import importlib

        # the package re-exports the fingerprint *function*, shadowing the
        # submodule attribute; resolve the module itself for patching.
        fp_module = importlib.import_module("repro.scenarios.fingerprint")

        arch = ArchConfig.scaled(16)
        calls = []
        real_fingerprint = fp_module.fingerprint
        try:
            def counting(obj):
                calls.append(1)
                return real_fingerprint(obj)

            fp_module.fingerprint = counting
            first = fp_module.arch_key(arch)
            second = fp_module.arch_key(arch)
        finally:
            fp_module.fingerprint = real_fingerprint
        assert first == second == fp_module.arch_key(ArchConfig.scaled(16))
        assert len(calls) == 1  # the second call was served from the memo

    def test_unsupported_objects_rejected(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())


class TestArtifactCache:
    def test_get_or_create_builds_once(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_create("mapping", "k1", lambda: calls.append(1) or "v")
        assert value == "v"
        assert calls == [1]
        assert cache.stats.hit_count("mapping") == 2
        assert cache.stats.miss_count("mapping") == 1

    def test_regions_are_independent(self):
        cache = ArtifactCache()
        cache.get_or_create("a", "k", lambda: 1)
        cache.get_or_create("b", "k", lambda: 2)
        assert cache.lookup("a", "k") == 1
        assert cache.lookup("b", "k") == 2
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries_per_region=2)
        cache.get_or_create("r", "k1", lambda: 1)
        cache.get_or_create("r", "k2", lambda: 2)
        cache.get_or_create("r", "k1", lambda: 1)  # refresh k1
        cache.get_or_create("r", "k3", lambda: 3)  # evicts k2
        assert cache.lookup("r", "k1") == 1
        assert cache.lookup("r", "k2") is None
        assert cache.lookup("r", "k3") == 3

    def test_clear_keeps_stats(self):
        cache = ArtifactCache()
        cache.get_or_create("r", "k", lambda: 1)
        cache.clear()
        assert cache.lookup("r", "k") is None
        assert cache.stats.miss_count() == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries_per_region=0)

    def test_stats_snapshot_is_independent(self):
        cache = ArtifactCache()
        cache.get_or_create("r", "k", lambda: 1)
        snap = cache.stats.snapshot()
        cache.get_or_create("r", "k", lambda: 1)
        assert snap.hit_count("r") == 0
        assert cache.stats.hit_count("r") == 1
