"""Tests for the numpy reference executor and the quantisation utilities."""

import numpy as np
import pytest

from repro.dnn import (
    Conv2D,
    MaxPool2D,
    QuantizationSpec,
    ReferenceExecutor,
    TensorShape,
    conv2d_reference,
    im2col,
    initialize_parameters,
    models,
    quantization_rmse,
    quantize,
    quantize_graph_parameters,
    random_input,
)
from repro.dnn.numerics import avgpool2d_reference, linear_reference, maxpool2d_reference
from repro.dnn.layers import AvgPool2D, Linear


class TestIm2Col:
    def test_shape(self):
        ifm = np.arange(3 * 8 * 8, dtype=float).reshape(3, 8, 8)
        cols = im2col(ifm, kernel_size=3, stride=1, padding=1)
        assert cols.shape == (64, 27)

    def test_stride_reduces_rows(self):
        ifm = np.ones((2, 8, 8))
        cols = im2col(ifm, kernel_size=3, stride=2, padding=1)
        assert cols.shape == (16, 18)

    def test_identity_kernel_matches_input(self):
        ifm = np.random.default_rng(0).normal(size=(1, 4, 4))
        cols = im2col(ifm, kernel_size=1, stride=1, padding=0)
        assert np.allclose(cols.reshape(4, 4), ifm[0])

    def test_invalid_input_raises(self):
        with pytest.raises(ValueError):
            im2col(np.ones((4, 4)), 3, 1, 1)


class TestReferenceKernels:
    def test_conv_matches_manual_1x1(self):
        ifm = np.random.default_rng(1).normal(size=(4, 5, 5))
        weights = np.random.default_rng(2).normal(size=(8, 4, 1, 1))
        layer = Conv2D(out_channels=8, kernel_size=1, padding=0, bias=False, fused_relu=False)
        out = conv2d_reference(ifm, weights, None, layer)
        manual = np.einsum("oc,chw->ohw", weights[:, :, 0, 0], ifm)
        assert np.allclose(out, manual)

    def test_conv_relu_clamps_negatives(self):
        ifm = -np.ones((1, 4, 4))
        weights = np.ones((1, 1, 1, 1))
        layer = Conv2D(out_channels=1, kernel_size=1, padding=0, bias=False, fused_relu=True)
        out = conv2d_reference(ifm, weights, None, layer)
        assert np.all(out == 0.0)

    def test_maxpool_reference(self):
        ifm = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = maxpool2d_reference(ifm, MaxPool2D(kernel_size=2, stride=2))
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 5.0
        assert out[0, 1, 1] == 15.0

    def test_global_avgpool_reference(self):
        ifm = np.ones((3, 4, 4)) * np.arange(1, 4)[:, None, None]
        out = avgpool2d_reference(ifm, AvgPool2D(global_pool=True))
        assert np.allclose(out.reshape(-1), [1.0, 2.0, 3.0])

    def test_linear_reference(self):
        ifm = np.ones((4, 1, 1))
        weights = np.eye(4)
        out = linear_reference(ifm, weights, None, Linear(out_features=4, bias=False))
        assert np.allclose(out.reshape(-1), np.ones(4))


class TestReferenceExecutor:
    def test_runs_every_node(self, tiny_graph):
        executor = ReferenceExecutor(tiny_graph, seed=0)
        outputs = executor.run(random_input(tiny_graph, seed=1))
        assert set(outputs) == {node.node_id for node in tiny_graph.nodes}

    def test_output_shape_matches_graph(self, tiny_graph):
        executor = ReferenceExecutor(tiny_graph, seed=0)
        out = executor.run_output(random_input(tiny_graph, seed=1))
        expected = tiny_graph.output_nodes[0].output_shape
        assert out.shape == expected.chw

    def test_deterministic_given_seed(self, tiny_graph):
        image = random_input(tiny_graph, seed=3)
        a = ReferenceExecutor(tiny_graph, seed=5).run_output(image)
        b = ReferenceExecutor(tiny_graph, seed=5).run_output(image)
        assert np.allclose(a, b)

    def test_wrong_input_shape_rejected(self, tiny_graph):
        executor = ReferenceExecutor(tiny_graph, seed=0)
        with pytest.raises(ValueError):
            executor.run(np.zeros((1, 8, 8)))

    def test_mvm_hook_is_used(self, tiny_graph):
        calls = []

        def hook(node, inputs, weights):
            calls.append(node.node_id)
            return inputs @ weights

        executor = ReferenceExecutor(tiny_graph, seed=0, mvm_hook=hook)
        executor.run_output(random_input(tiny_graph, seed=1))
        analog_ids = {node.node_id for node in tiny_graph.analog_nodes()}
        assert analog_ids.issubset(set(calls))

    def test_mobilenet_depthwise_runs(self):
        graph = models.mobilenet_v2(input_shape=(3, 32, 32), num_classes=10)
        executor = ReferenceExecutor(graph, seed=0)
        out = executor.run_output(random_input(graph, seed=1))
        assert out.shape == (10, 1, 1)


class TestQuantization:
    def test_round_trip_error_small(self):
        rng = np.random.default_rng(0)
        tensor = rng.normal(size=(64, 64))
        rmse = quantization_rmse(tensor, QuantizationSpec(bits=8))
        assert rmse < 0.02 * np.abs(tensor).max()

    def test_lower_bits_higher_error(self):
        rng = np.random.default_rng(1)
        tensor = rng.normal(size=(32, 32))
        assert quantization_rmse(tensor, QuantizationSpec(bits=4)) > quantization_rmse(
            tensor, QuantizationSpec(bits=8)
        )

    def test_codes_within_range(self):
        spec = QuantizationSpec(bits=8)
        quantized = quantize(np.linspace(-3, 3, 100), spec)
        assert quantized.codes.max() <= spec.q_max
        assert quantized.codes.min() >= spec.q_min

    def test_per_channel_scales(self):
        tensor = np.stack([np.ones(10), 100 * np.ones(10)])
        quantized = quantize(tensor, QuantizationSpec(bits=8, per_channel=True))
        assert quantized.scale.shape == (2,)
        assert np.allclose(quantized.dequantize(), tensor, rtol=0.02)

    def test_zero_tensor_handled(self):
        quantized = quantize(np.zeros((4, 4)))
        assert np.all(quantized.codes == 0)
        assert np.all(quantized.dequantize() == 0)

    def test_graph_parameter_quantisation(self, tiny_graph):
        params = initialize_parameters(tiny_graph, seed=0)
        quantized = quantize_graph_parameters(params)
        assert set(quantized) == set(params)
        for node_id, q in quantized.items():
            assert q.codes.shape == params[node_id].weight_matrix.shape

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=1)
