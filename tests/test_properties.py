"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import HBMSpec, IMASpec, InterconnectSpec, QuadrantTopology
from repro.aimc import Crossbar, NoiseModel, TiledMatrix
from repro.core import LayerSplit, ReductionPlan
from repro.dnn import QuantizationSpec, TensorShape, quantize
from repro.dnn.numerics import im2col
from repro.sim import Engine, Server


# --------------------------------------------------------------------------- #
# Architecture invariants
# --------------------------------------------------------------------------- #
@given(rows=st.integers(1, 4096), cols=st.integers(1, 4096))
def test_split_covers_whole_matrix(rows, cols):
    """Row/column splits always allocate at least as many cells as the matrix has."""
    ima = IMASpec()
    split = LayerSplit.for_matrix(rows, cols, ima)
    allocated_rows = split.n_row_splits * ima.rows
    allocated_cols = split.n_col_splits * ima.cols
    assert allocated_rows >= rows
    assert allocated_cols >= cols
    assert 0 < split.cell_utilization <= 1
    # Splits are minimal: one fewer split along either axis would not fit.
    assert (split.n_row_splits - 1) * ima.rows < rows
    assert (split.n_col_splits - 1) * ima.cols < cols


@given(n_partials=st.integers(1, 200))
def test_reduction_plan_reduces_to_one(n_partials):
    """The dedicated reduction tree always converges to a single output."""
    plan = ReductionPlan.plan(n_partials)
    if plan.dedicated:
        assert plan.levels[0].n_inputs == n_partials
        assert plan.levels[-1].n_outputs == 1
        for earlier, later in zip(plan.levels, plan.levels[1:]):
            assert later.n_inputs == earlier.n_outputs
    ops = plan.total_ops_per_job(100)
    assert ops == 100 * (n_partials - 1)


@given(
    src=st.integers(0, 511),
    dst=st.integers(0, 511),
    n_bytes=st.integers(1, 1 << 20),
)
@settings(max_examples=50)
def test_route_properties(src, dst, n_bytes):
    """Routes are loop-free, symmetric in hop count, and HBM routes are longest."""
    topo = QuadrantTopology()
    route = topo.route(src, dst)
    assert len(set(route.links)) == len(route.links)  # no link repeated
    assert route.n_hops == topo.route(dst, src).n_hops
    assert route.serialization_cycles(n_bytes) == math.ceil(n_bytes / 64)
    if src != dst:
        assert route.n_hops >= 2
        assert route.n_hops <= topo.route_to_hbm(src).n_hops + topo.route_to_hbm(dst).n_hops


@given(n_bytes=st.integers(0, 1 << 22))
def test_hbm_service_cycles_monotonic(n_bytes):
    """HBM channel occupancy grows monotonically with the payload."""
    hbm = HBMSpec()
    assert hbm.service_cycles(n_bytes) <= hbm.service_cycles(n_bytes + 64)
    if n_bytes > 0:
        assert hbm.service_cycles(n_bytes) >= hbm.access_latency_cycles


@given(factors=st.lists(st.integers(1, 8), min_size=2, max_size=5))
def test_interconnect_from_factors_capacity(factors):
    """The topology hosts exactly the product of its quadrant factors."""
    spec = InterconnectSpec.from_factors(factors)
    expected = 1
    for factor in factors:
        expected *= factor
    assert spec.max_clusters == expected


# --------------------------------------------------------------------------- #
# Numerics invariants
# --------------------------------------------------------------------------- #
@given(
    channels=st.integers(1, 4),
    size=st.integers(3, 12),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 2),
)
@settings(max_examples=30, deadline=None)
def test_im2col_shape_invariant(channels, size, kernel, stride):
    """im2col always produces (out_pixels, C*K*K) with finite values."""
    padding = kernel // 2
    ifm = np.random.default_rng(0).normal(size=(channels, size, size))
    cols = im2col(ifm, kernel, stride, padding)
    out = (size + 2 * padding - kernel) // stride + 1
    assert cols.shape == (out * out, channels * kernel * kernel)
    assert np.all(np.isfinite(cols))


@given(
    bits=st.integers(2, 10),
    values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64),
)
def test_quantization_error_bounded_by_step(bits, values):
    """Quantisation error never exceeds half a quantisation step."""
    tensor = np.asarray(values)
    spec = QuantizationSpec(bits=bits)
    quantized = quantize(tensor, spec)
    max_abs = np.abs(tensor).max()
    if max_abs == 0:
        assert np.all(quantized.codes == 0)
        return
    step = max_abs / spec.q_max
    error = np.abs(quantized.dequantize() - tensor)
    assert np.all(error <= step / 2 + 1e-9)


@given(
    rows=st.integers(1, 96),
    cols=st.integers(1, 96),
    xbar=st.sampled_from([16, 32, 64]),
)
@settings(max_examples=25, deadline=None)
def test_tiled_matrix_equals_dense_matmul(rows, cols, xbar):
    """Row/column-split analog execution (ideal) equals the dense product."""
    rng = np.random.default_rng(rows * 1000 + cols)
    weights = rng.normal(size=(rows, cols))
    x = rng.normal(size=rows)
    tiled = TiledMatrix(weights, crossbar_rows=xbar, crossbar_cols=xbar,
                        noise=NoiseModel.ideal(), seed=0)
    assert tiled.n_crossbars == math.ceil(rows / xbar) * math.ceil(cols / xbar)
    assert np.allclose(tiled.mvm(x), x @ weights, atol=1e-8)


@given(shape=st.tuples(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64)))
def test_tensor_shape_invariants(shape):
    """Byte counts and tiling helpers are consistent."""
    tensor = TensorShape(*shape)
    assert tensor.n_bytes(2) == 2 * tensor.n_elements
    assert TensorShape.from_hwc(tensor.hwc) == tensor
    tile = tensor.with_width(1)
    assert tile.n_elements == tensor.channels * tensor.height


# --------------------------------------------------------------------------- #
# Event-kernel invariants
# --------------------------------------------------------------------------- #
@given(durations=st.lists(st.integers(0, 50), min_size=1, max_size=30),
       capacity=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_server_conservation(durations, capacity):
    """A server serves every job exactly once and accumulates their service time."""
    engine = Engine()
    server = Server(engine, "s", capacity=capacity)
    finished = []
    for duration in durations:
        server.submit(duration, lambda d=duration: finished.append(d))
    engine.run()
    assert sorted(finished) == sorted(durations)
    assert server.jobs_served == len(durations)
    assert server.utilization_time == sum(durations)
    # Makespan can never beat the ideal parallel bound.
    assert engine.now >= math.ceil(sum(durations) / capacity) - max(durations, default=0)


@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=50))
def test_engine_time_is_monotonic(delays):
    """Simulated time only moves forward regardless of scheduling order."""
    engine = Engine()
    observed = []
    for delay in delays:
        engine.after(delay, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert engine.now == max(delays)
