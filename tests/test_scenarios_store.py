"""Tests for the persistent on-disk artifact store (repro.scenarios.store).

The headline acceptance tests live here: a second invocation of an
identical sweep — serial via a fresh cache, or *parallel* across pool
workers — performs zero new ``simulate()`` calls because every mapping and
simulation is served from the shared on-disk store; plus the store's
versioning/corruption-tolerance rules and the compact ``NetworkMapping``
round trip.
"""

import json
import pickle

import pytest

from repro.arch import ArchConfig
from repro.core import OptimizationLevel
from repro.core.mapping import MAPPING_PAYLOAD_VERSION, NetworkMapping
from repro.scenarios import (
    ArtifactCache,
    ArtifactStore,
    Scenario,
    ScenarioGrid,
    SweepRunner,
    mapping_stage,
    run_scenario,
    simulation_stage,
    workload_stage,
)
from repro.scenarios import pipeline as pipeline_module
from repro.scenarios.cli import main as cli_main
from repro.scenarios.store import SCHEMA_VERSION

TINY = Scenario(
    model="tiny_cnn",
    input_shape=(3, 32, 32),
    num_classes=10,
    n_clusters=16,
    batch_size=2,
    level="final",
)
GRID = ScenarioGrid.from_axes(
    base=TINY, name="store-sweep", crossbar_size=(128, 256), batch_size=(2, 4)
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def counting_simulate(monkeypatch):
    """Patch the pipeline's simulate with a call counter (fork-safe)."""
    calls = []
    real = pipeline_module.simulate

    def wrapper(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(pipeline_module, "simulate", wrapper)
    return calls


class TestStoreBasics:
    def test_roundtrip_and_miss(self, store):
        assert store.load("simulation", "a" * 64) is None
        store.store("simulation", "a" * 64, {"x": (1, 2)})
        assert store.load("simulation", "a" * 64) == {"x": (1, 2)}
        assert store.size("simulation") == 1
        assert len(store) == 1
        # other regions do not see the key
        assert store.load("mapping", "a" * 64) is None

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-root"))
        assert ArtifactStore().root == tmp_path / "env-root"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert ArtifactStore().root.name == "repro"

    def test_malformed_keys_rejected(self, store):
        with pytest.raises(ValueError, match="malformed artifact key"):
            store.load("simulation", "../escape")
        with pytest.raises(ValueError, match="malformed artifact key"):
            store.store("simulation", "", 1)

    def test_last_writer_wins(self, store):
        store.store("mapping", "k" * 64, "first")
        store.store("mapping", "k" * 64, "second")
        assert store.load("mapping", "k" * 64) == "second"
        assert store.size("mapping") == 1

    def test_unpicklable_payload_degrades_instead_of_failing(self, store):
        """A persist failure must never discard a successfully built artifact."""
        import threading

        unpicklable = threading.Lock()
        cache = ArtifactCache(store=store)
        with pytest.warns(RuntimeWarning, match="failed to persist"):
            value = cache.get_or_create(
                "simulation", "k" * 64, lambda: unpicklable, persist=True
            )
        assert value is unpicklable  # the build result survives
        assert cache.stats.miss_count("simulation") == 1
        assert store.load("simulation", "k" * 64) is None

    def test_clear_drops_current_namespace_only(self, store):
        store.store("mapping", "k" * 64, 1)
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.load("mapping", "k" * 64) is None
        store.store("mapping", "k" * 64, 2)  # still writable afterwards
        assert store.load("mapping", "k" * 64) == 2

    def test_unwritable_root_degrades_with_one_warning(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store root should be")
        bad = ArtifactStore(blocked)
        with pytest.warns(RuntimeWarning, match="failed to persist"):
            bad.store("mapping", "k" * 64, 1)
        # second failure is silent, loads still behave as misses
        bad.store("mapping", "j" * 64, 2)
        assert bad.load("mapping", "k" * 64) is None


class TestStoreRobustness:
    def _entry_path(self, store, region, key):
        store.store(region, key, {"payload": True})
        path = store._path(region, key)
        assert path.exists()
        return path

    def test_truncated_entry_reads_as_miss_and_is_discarded(self, store):
        key = "b" * 64
        path = self._entry_path(store, "simulation", key)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load("simulation", key) is None
        assert not path.exists()  # discarded so it is rebuilt exactly once

    def test_garbage_entry_reads_as_miss(self, store):
        key = "c" * 64
        path = self._entry_path(store, "workload", key)
        path.write_bytes(b"\x00not a pickle at all")
        assert store.load("workload", key) is None

    def test_stale_schema_version_reads_as_miss(self, store):
        key = "d" * 64
        path = self._entry_path(store, "mapping", key)
        envelope = pickle.loads(path.read_bytes())
        envelope["schema"] = SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(envelope))
        assert store.load("mapping", key) is None

    def test_stale_canonical_version_reads_as_miss(self, store):
        key = "e" * 64
        path = self._entry_path(store, "mapping", key)
        envelope = pickle.loads(path.read_bytes())
        envelope["canonical"] = envelope["canonical"] + 1
        path.write_bytes(pickle.dumps(envelope))
        assert store.load("mapping", key) is None

    def test_mismatched_addressing_reads_as_miss(self, store):
        key = "f" * 64
        path = self._entry_path(store, "mapping", key)
        envelope = pickle.loads(path.read_bytes())
        envelope["key"] = "g" * 64
        path.write_bytes(pickle.dumps(envelope))
        assert store.load("mapping", key) is None

    def test_corrupt_entry_is_rebuilt_through_the_cache(self, store):
        cache = ArtifactCache(store=store)
        builds = []
        key = "h" * 64
        build = lambda: builds.append(1) or "artifact"
        cache.get_or_create("simulation", key, build, persist=True)
        store._path("simulation", key).write_bytes(b"rot")
        fresh = ArtifactCache(store=store)  # new process, warm disk
        assert fresh.get_or_create("simulation", key, build, persist=True) == "artifact"
        assert len(builds) == 2  # corrupt entry forced one rebuild
        assert fresh.get_or_create("simulation", key, build, persist=True) == "artifact"
        assert len(builds) == 2

    def test_pr4_simulation_payloads_read_as_misses_and_rebuild_once(self, tmp_path):
        """The PR 5 payload-version bump invalidates PR 4-era store entries.

        PR 5 bumped SIMULATION_PAYLOAD_VERSION (per-stage completion traces
        on the tracer, the fast_forwarded provenance flag): a warm store
        written under the old stamp must read as a miss, rebuild exactly
        once, and serve the rebuilt entry from disk afterwards.
        """
        from repro.sim.system import SIMULATION_PAYLOAD_VERSION

        assert SIMULATION_PAYLOAD_VERSION == 4  # bumped in PR 10 (3 since PR 5)
        store = ArtifactStore(tmp_path / "sim-payload-store")
        cache = ArtifactCache(store=store)
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=cache
        )
        workload = workload_stage(mapping, cache=cache)
        result = simulation_stage(arch, workload, cache=cache)
        # stamp every persisted simulation payload as the PR 4 schema
        region_dir = store._namespace / "simulation"
        stamped = 0
        for path in region_dir.rglob("*"):
            if not path.is_file():
                continue
            envelope = pickle.loads(path.read_bytes())
            envelope["payload"]["version"] = 1
            path.write_bytes(pickle.dumps(envelope))
            stamped += 1
        assert stamped == 1
        fresh = ArtifactCache(store=store)  # a new process over the old store
        mapping2 = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=fresh
        )
        workload2 = workload_stage(mapping2, cache=fresh)
        rebuilt = simulation_stage(arch, workload2, cache=fresh)
        assert fresh.stats.miss_count("simulation") == 1  # rebuilt, not served
        assert fresh.stats.disk_hit_count("simulation") == 0
        assert rebuilt.record() == result.record()
        # rebuilt once: the refreshed entry serves the next process from disk
        third = ArtifactCache(store=store)
        mapping3 = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=third
        )
        workload3 = workload_stage(mapping3, cache=third)
        served = simulation_stage(arch, workload3, cache=third)
        assert third.stats.miss_count("simulation") == 0
        assert third.stats.disk_hit_count("simulation") == 1
        assert served.record() == result.record()

    def test_pr5_simulation_payloads_read_as_misses_and_rebuild_once(self, tmp_path):
        """The PR 9 payload-version bump invalidates PR 5-era store entries.

        PR 9 bumped SIMULATION_PAYLOAD_VERSION 2 -> 3 (the tracer gained the
        per-request completion map of open-system workloads): a warm store
        written under the v2 stamp must read as a miss, rebuild exactly
        once, and serve the rebuilt entry from disk afterwards.
        """
        store = ArtifactStore(tmp_path / "sim-v2-store")
        cache = ArtifactCache(store=store)
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=cache
        )
        workload = workload_stage(mapping, cache=cache)
        result = simulation_stage(arch, workload, cache=cache)
        # stamp every persisted simulation payload as the PR 5 schema
        region_dir = store._namespace / "simulation"
        stamped = 0
        for path in region_dir.rglob("*"):
            if not path.is_file():
                continue
            envelope = pickle.loads(path.read_bytes())
            envelope["payload"]["version"] = 2
            path.write_bytes(pickle.dumps(envelope))
            stamped += 1
        assert stamped == 1
        fresh = ArtifactCache(store=store)  # a new process over the old store
        rebuilt = simulation_stage(arch, workload, cache=fresh)
        assert fresh.stats.miss_count("simulation") == 1  # rebuilt, not served
        assert fresh.stats.disk_hit_count("simulation") == 0
        assert rebuilt.record() == result.record()
        # rebuilt once: the refreshed entry serves the next process from disk
        third = ArtifactCache(store=store)
        served = simulation_stage(arch, workload, cache=third)
        assert third.stats.miss_count("simulation") == 0
        assert third.stats.disk_hit_count("simulation") == 1
        assert served.record() == result.record()

    def test_stale_payload_version_forces_rebuild(self, tmp_path):
        """A future MAPPING_PAYLOAD_VERSION bump must read as a miss."""
        store = ArtifactStore(tmp_path / "payload-store")
        cache = ArtifactCache(store=store)
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=cache
        )
        # corrupt every persisted mapping payload's version stamp
        region_dir = store._namespace / "mapping"
        stamped = 0
        for path in region_dir.rglob("*"):
            if not path.is_file():
                continue
            envelope = pickle.loads(path.read_bytes())
            envelope["payload"]["version"] = MAPPING_PAYLOAD_VERSION + 1
            path.write_bytes(pickle.dumps(envelope))
            stamped += 1
        assert stamped == 1
        fresh = ArtifactCache(store=store)
        rebuilt = mapping_stage(
            graph, arch, TINY.batch_size, OptimizationLevel.FINAL, cache=fresh
        )
        assert fresh.stats.miss_count("mapping") == 1  # rebuilt, not served
        assert fresh.stats.disk_hit_count("mapping") == 0
        assert rebuilt.record() == mapping.record()


class TestMappingPayload:
    def test_round_trip_equality(self):
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(graph, arch, 4, OptimizationLevel.FINAL)
        payload = mapping.to_payload()
        restored = NetworkMapping.from_payload(payload, graph, arch)
        assert restored == mapping
        assert restored.record() == mapping.record()
        assert restored.summary() == mapping.summary()

    def test_payload_is_compact_plain_data(self):
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(graph, arch, 2, OptimizationLevel.NAIVE)
        payload = mapping.to_payload()
        # the graph and arch are re-attached by the loader, never stored
        assert "graph" not in payload and "arch" not in payload
        assert payload["version"] == MAPPING_PAYLOAD_VERSION
        # survives a pickle round trip as pure data (no live objects)
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_unknown_version_rejected(self):
        graph, arch = TINY.build_graph(), TINY.build_arch()
        mapping = mapping_stage(graph, arch, 2, OptimizationLevel.NAIVE)
        payload = dict(mapping.to_payload(), version=MAPPING_PAYLOAD_VERSION + 1)
        with pytest.raises(ValueError, match="stale artifact"):
            NetworkMapping.from_payload(payload, graph, arch)


class TestWarmFromDisk:
    def test_second_process_runs_zero_simulations(self, store, monkeypatch):
        """A fresh cache over a warm store rebuilds nothing at all."""
        calls = counting_simulate(monkeypatch)
        cold = run_scenario(TINY, ArtifactCache(store=store))
        assert len(calls) == 1
        warm_cache = ArtifactCache(store=store)  # simulates a new process
        warm = run_scenario(TINY, warm_cache)
        assert len(calls) == 1  # zero new simulate() calls
        assert warm_cache.stats.miss_count("simulation") == 0
        assert warm_cache.stats.disk_hit_count("simulation") == 1
        assert warm_cache.stats.disk_hit_count("mapping") == 1
        assert warm_cache.stats.disk_hit_count("workload") == 1
        assert warm.metrics == cold.metrics
        assert warm.simulation == cold.simulation
        assert warm.mapping == cold.mapping

    def test_disk_served_results_match_fresh_builds_exactly(self, store):
        outcomes = {}
        for label in ("cold", "warm"):
            cache = ArtifactCache(store=store)
            outcomes[label] = SweepRunner(max_workers=1, cache=cache).run(GRID)
        for cold, warm in zip(outcomes["cold"], outcomes["warm"]):
            assert cold.metrics == warm.metrics
            assert cold.simulation == warm.simulation

    def test_disk_served_simulation_supports_breakdown_analysis(self, store):
        """Rehydrated results keep the tracer: they are not second-class."""
        from repro.analysis.breakdown import breakdown_summary, cluster_breakdown

        graph, arch = TINY.build_graph(), TINY.build_arch()
        for _ in range(2):
            cache = ArtifactCache(store=store)
            mapping = mapping_stage(
                graph, arch, 2, OptimizationLevel.FINAL, cache=cache
            )
            workload = workload_stage(mapping, cache=cache)
            result = simulation_stage(arch, workload, cache=cache)
        assert cache.stats.disk_hit_count("simulation") == 1
        rows = cluster_breakdown(result, mapping)
        assert rows and breakdown_summary(rows)["mean_busy_fraction"] > 0.0

    def test_parallel_workers_share_the_store(self, store):
        """Cold parallel run populates; warm parallel run rebuilds nothing.

        The aggregated worker cache statistics prove it: misses count
        builds, so zero misses in the mapping/workload/simulation regions
        means zero new optimizer/lowering/simulate() executions across
        every worker process.
        """
        scenarios = GRID.expand()
        cold_runner = SweepRunner(
            max_workers=2, cache=ArtifactCache(store=store), on_error="record"
        )
        cold = cold_runner.run(scenarios)
        assert len(cold) == len(scenarios) and not cold.failures
        assert store.size("simulation") == len(scenarios)
        assert cold.cache_stats is not None
        assert cold.cache_stats.miss_count("simulation") == len(scenarios)

        warm_runner = SweepRunner(
            max_workers=2, cache=ArtifactCache(store=store), on_error="record"
        )
        warm = warm_runner.run(scenarios)
        assert len(warm) == len(scenarios) and not warm.failures
        assert warm.cache_stats is not None
        for region in ("mapping", "workload", "simulation"):
            assert warm.cache_stats.miss_count(region) == 0, region
        assert warm.cache_stats.disk_hit_count("simulation") == len(scenarios)
        for before, after in zip(cold, warm):
            assert before.metrics == after.metrics

    def test_parallel_run_with_store_does_not_warn_about_cold_workers(self, store):
        import warnings as warnings_module

        runner = SweepRunner(max_workers=2, cache=ArtifactCache(store=store))
        runner.run([TINY])  # warm the in-memory cache
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", RuntimeWarning)
            try:
                runner.run(GRID.expand()[:2])
            except RuntimeWarning as warning:  # pragma: no cover - diagnostic
                assert "process-local" not in str(warning)


class TestSweepContract:
    def test_outcomes_and_failures_carry_input_indices(self):
        impossible = Scenario(model="resnet18", input_shape=(3, 64, 64), n_clusters=2)
        feasible_a = TINY
        feasible_b = TINY.replace(batch_size=4)
        runner = SweepRunner(max_workers=1, on_error="record")
        result = runner.run([feasible_a, impossible, feasible_b])
        assert [o.index for o in result.outcomes] == [0, 2]
        assert [f.index for f in result.failures] == [1]
        # realignment: index maps every record back to the submitted list
        submitted = [feasible_a, impossible, feasible_b]
        for outcome in result.outcomes:
            assert submitted[outcome.index] == outcome.scenario
        for failure in result.failures:
            assert submitted[failure.index] == failure.scenario

    def test_as_dict_includes_indices_and_cache_stats(self):
        runner = SweepRunner(max_workers=1, on_error="record")
        impossible = Scenario(model="resnet18", input_shape=(3, 64, 64), n_clusters=2)
        result = runner.run([impossible, TINY])
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["outcomes"][0]["index"] == 1
        assert payload["failures"][0]["index"] == 0
        stats = payload["cache_stats"]
        assert stats is not None
        assert stats["misses"]["simulation"] == 1

    def test_cache_stats_none_without_cache(self):
        result = SweepRunner(max_workers=1, cache=None).run([TINY])
        assert result.cache_stats is None
        assert result.as_dict()["cache_stats"] is None

    def test_parallel_run_without_cache_stays_uncached(self):
        """cache=None must disable worker caches too, not just the parent's."""
        result = SweepRunner(max_workers=2, cache=None).run(
            [TINY, TINY.replace(batch_size=4)]
        )
        assert len(result) == 2
        assert result.cache_stats is None
        assert result.as_dict()["cache_stats"] is None


class TestPaperDefaultDerivation:
    def test_label_and_arch_share_one_cluster_source(self):
        paper_clusters = ArchConfig.paper().n_clusters
        scenario = Scenario()
        assert scenario.resolved_n_clusters == paper_clusters
        assert f"/c{paper_clusters}/" in scenario.label
        assert scenario.build_arch().n_clusters == paper_clusters

    def test_explicit_clusters_still_win(self):
        scenario = Scenario(n_clusters=64)
        assert scenario.resolved_n_clusters == 64
        assert "/c64/" in scenario.label
        assert scenario.build_arch().n_clusters == 64


class TestCLIPersistence:
    SPEC = {
        "name": "persist",
        "base": {
            "model": "tiny_cnn",
            "input_shape": [3, 32, 32],
            "num_classes": 10,
            "n_clusters": 16,
            "level": "final",
        },
        "axes": {"batch_size": [2, 4]},
    }

    def _run(self, tmp_path, tag, extra=()):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(self.SPEC))
        out = tmp_path / f"{tag}.json"
        args = [str(spec), "--json", str(out), *extra]
        assert cli_main(args) == 0
        return json.loads(out.read_text())

    def test_warm_invocation_reports_full_cache_hits(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-store"
        cold = self._run(tmp_path, "cold", ["--cache-dir", str(cache_dir)])
        assert cold["cache_stats"]["misses"]["simulation"] == 2
        warm = self._run(tmp_path, "warm", ["--cache-dir", str(cache_dir)])
        printed = capsys.readouterr().out
        assert f"artifact store: {cache_dir}" in printed
        # the graph region is memory-only by design (graphs rebuild in
        # microseconds); every expensive region must be disk-served.
        for region in ("optimizer", "mapping", "workload", "simulation"):
            assert warm["cache_stats"]["misses"].get(region, 0) == 0, region
        assert warm["cache_stats"]["disk_hits"]["simulation"] == 2
        for a, b in zip(cold["outcomes"], warm["outcomes"]):
            assert a["metrics"] == b["metrics"]

    def test_no_store_keeps_cache_in_memory_only(self, tmp_path):
        cache_dir = tmp_path / "unused-store"
        first = self._run(
            tmp_path, "a", ["--cache-dir", str(cache_dir), "--no-store"]
        )
        second = self._run(
            tmp_path, "b", ["--cache-dir", str(cache_dir), "--no-store"]
        )
        assert not cache_dir.exists()
        assert second["cache_stats"]["misses"]["simulation"] == 2
        for a, b in zip(first["outcomes"], second["outcomes"]):
            assert a["metrics"] == b["metrics"]

    def test_default_store_honours_repro_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-store"))
        self._run(tmp_path, "env")
        assert (tmp_path / "env-store").exists()
