"""Unit tests for the DNN frontend (graph IR, layers, builder, model zoo)."""

import pytest

from repro.dnn import (
    Add,
    AvgPool2D,
    Conv2D,
    Flatten,
    Graph,
    GraphBuilder,
    GraphError,
    Input,
    LayerError,
    Linear,
    MaxPool2D,
    ReLU,
    TensorShape,
    models,
)


class TestTensorShape:
    def test_basic_properties(self):
        shape = TensorShape(64, 32, 16)
        assert shape.n_elements == 64 * 32 * 16
        assert shape.n_bytes() == shape.n_elements
        assert shape.n_bytes(2) == 2 * shape.n_elements
        assert shape.chw == (64, 32, 16)
        assert shape.hwc == (32, 16, 64)

    def test_string_uses_hwc_order(self):
        assert str(TensorShape(3, 256, 256)) == "256x256x3"

    def test_from_chw_hwc_round_trip(self):
        shape = TensorShape.from_chw((8, 4, 2))
        assert shape == TensorShape(8, 4, 2)
        assert TensorShape.from_hwc(shape.hwc) == shape

    def test_with_width_and_column_bytes(self):
        shape = TensorShape(16, 8, 32)
        tile = shape.with_width(4)
        assert tile.width == 4 and tile.channels == 16
        assert shape.column_bytes() == 16 * 8

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TensorShape(0, 4, 4)
        with pytest.raises(ValueError):
            TensorShape(4, 4, 4).n_bytes(0)


class TestLayers:
    def test_conv_output_shape_same_padding(self):
        conv = Conv2D(out_channels=64, kernel_size=3, stride=1, padding=1)
        out = conv.output_shape([TensorShape(3, 32, 32)])
        assert out == TensorShape(64, 32, 32)

    def test_conv_output_shape_stride2(self):
        conv = Conv2D(out_channels=64, kernel_size=7, stride=2, padding=3)
        out = conv.output_shape([TensorShape(3, 256, 256)])
        assert out == TensorShape(64, 128, 128)

    def test_conv_params_and_macs(self):
        conv = Conv2D(out_channels=64, kernel_size=3, stride=1, padding=1, bias=False)
        ifm = TensorShape(64, 56, 56)
        assert conv.param_count([ifm]) == 64 * 64 * 9
        assert conv.macs([ifm]) == 56 * 56 * 64 * 64 * 9

    def test_conv_weight_matrix_shape(self):
        conv = Conv2D(out_channels=128, kernel_size=3)
        assert conv.weight_matrix_shape([TensorShape(64, 32, 32)]) == (576, 128)

    def test_depthwise_conv(self):
        conv = Conv2D(out_channels=32, kernel_size=3, groups=32)
        ifm = TensorShape(32, 16, 16)
        assert conv.is_depthwise
        assert conv.param_count([ifm]) == 32 * 9 + 32
        assert conv.weight_matrix_shape([ifm]) == (9, 1)

    def test_conv_group_mismatch_raises(self):
        conv = Conv2D(out_channels=32, kernel_size=3, groups=3)
        with pytest.raises(LayerError):
            conv.output_shape([TensorShape(32, 16, 16)])

    def test_conv_invalid_parameters(self):
        with pytest.raises(LayerError):
            Conv2D(out_channels=0)
        with pytest.raises(LayerError):
            Conv2D(stride=0)

    def test_maxpool_shape_and_ops(self):
        pool = MaxPool2D(kernel_size=3, stride=2, padding=1)
        out = pool.output_shape([TensorShape(64, 128, 128)])
        assert out == TensorShape(64, 64, 64)
        assert pool.digital_ops([TensorShape(64, 128, 128)]) == out.n_elements * 9

    def test_maxpool_default_stride_equals_kernel(self):
        pool = MaxPool2D(kernel_size=2)
        assert pool.effective_stride == 2
        assert pool.output_shape([TensorShape(8, 8, 8)]) == TensorShape(8, 4, 4)

    def test_global_avgpool(self):
        pool = AvgPool2D(global_pool=True)
        assert pool.output_shape([TensorShape(512, 8, 8)]) == TensorShape(512, 1, 1)

    def test_add_requires_matching_shapes(self):
        add = Add()
        shape = TensorShape(16, 8, 8)
        assert add.output_shape([shape, shape]) == shape
        with pytest.raises(LayerError):
            add.output_shape([shape, TensorShape(16, 8, 4)])

    def test_linear(self):
        fc = Linear(out_features=1000)
        ifm = TensorShape(512, 1, 1)
        assert fc.output_shape([ifm]) == TensorShape(1000, 1, 1)
        assert fc.param_count([ifm]) == 512 * 1000 + 1000
        assert fc.weight_matrix_shape([ifm]) == (512, 1000)

    def test_relu_and_flatten(self):
        shape = TensorShape(4, 4, 4)
        assert ReLU().output_shape([shape]) == shape
        assert Flatten().output_shape([shape]) == TensorShape(64, 1, 1)

    def test_analog_classification(self):
        assert Conv2D().is_analog
        assert Linear().is_analog
        assert not MaxPool2D().is_analog
        assert not Add().is_analog


class TestGraph:
    def _chain(self):
        graph = Graph("chain")
        node_in = graph.add(Input(shape=TensorShape(3, 8, 8)))
        conv = graph.add(Conv2D(out_channels=4, kernel_size=3), [node_in])
        pool = graph.add(MaxPool2D(kernel_size=2), [conv])
        return graph, node_in, conv, pool

    def test_topological_order_and_shapes(self):
        graph, node_in, conv, pool = self._chain()
        graph.infer_shapes()
        order = [node.node_id for node in graph.topological_order()]
        assert order == [node_in, conv, pool]
        assert graph.node(pool).output_shape == TensorShape(4, 4, 4)

    def test_consumers_and_producers(self):
        graph, node_in, conv, pool = self._chain()
        assert graph.consumers(node_in) == [conv]
        assert graph.producers(pool) == [conv]
        assert [n.node_id for n in graph.output_nodes] == [pool]

    def test_wrong_arity_rejected(self):
        graph = Graph()
        node_in = graph.add(Input(shape=TensorShape(3, 8, 8)))
        with pytest.raises(GraphError):
            graph.add(Add(), [node_in])

    def test_missing_input_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add(Conv2D(), [42])

    def test_totals(self):
        graph, *_ = self._chain()
        assert graph.total_params() > 0
        assert graph.total_macs() > 0
        assert graph.total_ops() >= 2 * graph.total_macs()

    def test_summary_contains_each_node(self):
        graph, *_ = self._chain()
        text = graph.summary()
        assert "conv2d" in text and "maxpool2d" in text

    def test_analog_digital_partition(self):
        graph, node_in, conv, pool = self._chain()
        graph.infer_shapes()
        assert [n.node_id for n in graph.analog_nodes()] == [conv]
        assert [n.node_id for n in graph.digital_nodes()] == [pool]


class TestBuilderAndModels:
    def test_builder_residual_connection(self):
        builder = GraphBuilder("net", input_shape=(3, 16, 16))
        builder.conv2d(8)
        skip = builder.current
        builder.conv2d(8)
        builder.add(skip)
        builder.global_avg_pool()
        builder.linear(10)
        graph = builder.build()
        adds = [n for n in graph.nodes if n.kind == "add"]
        assert len(adds) == 1
        assert len(adds[0].inputs) == 2

    def test_resnet18_structure(self, resnet18_graph):
        graph = resnet18_graph
        kinds = [node.kind for node in graph.nodes]
        assert kinds.count("conv2d") == 17  # stem + 16 block convolutions
        assert kinds.count("add") == 8
        assert kinds.count("maxpool2d") == 1
        assert kinds.count("linear") == 1
        # ~11.5 M parameters and ~2.3 GMAC at 256x256 (no projection convs).
        assert 11e6 < graph.total_params() < 12.5e6
        assert 2.0e9 < graph.total_macs() < 2.7e9

    def test_resnet18_ifm_groups(self, resnet18_graph):
        shapes = {str(n.input_shapes[0]) for n in resnet18_graph.nodes if n.input_shapes}
        for expected in (
            "256x256x3",
            "128x128x64",
            "64x64x64",
            "32x32x128",
            "16x16x256",
            "8x8x512",
        ):
            assert expected in shapes

    def test_resnet18_projection_variant_has_more_convs(self):
        paper = models.resnet18(paper_dag=True)
        full = models.resnet18(paper_dag=False)
        n_paper = sum(1 for n in paper.nodes if n.kind == "conv2d")
        n_full = sum(1 for n in full.nodes if n.kind == "conv2d")
        assert n_full > n_paper

    def test_resnet34_is_deeper(self):
        assert len(models.resnet34()) > len(models.resnet18())

    def test_resnet_cifar_depth_validation(self):
        graph = models.resnet_cifar(depth=20)
        assert graph.total_params() < 1e6
        with pytest.raises(ValueError):
            models.resnet_cifar(depth=21)

    def test_vgg16_parameter_count(self):
        graph = models.vgg16()
        assert 130e6 < graph.total_params() < 145e6

    def test_mobilenet_v2_builds(self):
        graph = models.mobilenet_v2()
        assert any(getattr(n.layer, "groups", 1) > 1 for n in graph.nodes)
        assert 2.5e6 < graph.total_params() < 5e6

    def test_simple_models_build(self):
        for factory in (
            models.tiny_cnn,
            models.linear_cnn,
            models.wide_layer_cnn,
            models.residual_chain,
            models.mlp,
        ):
            graph = factory()
            graph.infer_shapes()
            assert len(graph) > 2
