"""Open-system serving workloads: arrival processes and their contracts.

Four contracts pinned here:

* **Generator determinism** — every registered arrival process is a pure
  function of its parameters (the Poisson process of its seed), always
  producing non-decreasing integer schedules.
* **Trace round-trip** — an SWF-style trace file written and re-loaded
  yields the identical ``Workload``; malformed records raise the typed
  :class:`~repro.sim.ArrivalTraceError` naming the file and line.
* **Fast-forward refusal** — the steady-state fast-forward refuses any
  arrival-gated workload (its probe sees only the schedule's prefix, and
  extrapolation cannot reproduce per-request completions), so
  ``simulate(fast_forward=True)`` takes the verified full run with
  ``fast_forwarded=False`` provenance, bit-identically.
* **Closed-batch back-compat** — the ``arrival_cycles`` field is omitted
  from fingerprints while it keeps its default, so every closed-batch
  content digest and simulation key is byte-identical to the pre-serving
  expectation (pinned below as hex), and metric records written before the
  serving axis round-trip unchanged.
"""

import dataclasses

import pytest

from repro.analysis.metrics import PerformanceMetrics, compute_metrics, percentile
from repro.scenarios.fingerprint import arch_key, content_digest, simulation_key
from repro.sim import (
    ArrivalError,
    ArrivalTraceError,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    Workload,
    load_arrival_trace,
    resolve_arrivals,
    result_mismatches,
    simulate,
)
from repro.sim.steady_state import fast_forward_simulate

from test_sim_fast_forward import ARCH64, _chain


# --------------------------------------------------------------------------- #
# Generators: seeded, reproducible, monotone
# --------------------------------------------------------------------------- #
ALL_PROCESSES = [
    DeterministicArrivals(interval_cycles=300),
    DeterministicArrivals(interval_cycles=0, start_cycle=50),
    PoissonArrivals(mean_interarrival_cycles=250.0, seed=7),
    PoissonArrivals(mean_interarrival_cycles=1.5, seed=0),
    BurstyArrivals(burst_size=8, burst_interval_cycles=2000),
    BurstyArrivals(burst_size=3, burst_interval_cycles=0, start_cycle=9),
]


class TestGenerators:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=str)
    def test_same_parameters_same_timestamps(self, process):
        first = process.generate(48)
        second = process.generate(48)
        assert first == second
        assert len(first) == 48
        assert all(isinstance(t, int) for t in first)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=str)
    def test_schedules_are_non_negative_and_non_decreasing(self, process):
        arrivals = process.generate(48)
        assert arrivals[0] >= 0
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))

    def test_deterministic_formula(self):
        assert DeterministicArrivals(300, start_cycle=10).generate(4) == (
            10, 310, 610, 910,
        )

    def test_bursty_formula(self):
        assert BurstyArrivals(2, 1000, start_cycle=5).generate(5) == (
            5, 5, 1005, 1005, 2005,
        )

    def test_poisson_seed_axis(self):
        base = PoissonArrivals(mean_interarrival_cycles=250.0, seed=7)
        assert base.generate(48) == PoissonArrivals(250.0, seed=7).generate(48)
        assert base.generate(48) != PoissonArrivals(250.0, seed=8).generate(48)
        assert base.generate(48) != PoissonArrivals(260.0, seed=7).generate(48)

    def test_prefix_stability(self):
        """A shorter run sees the same leading timestamps (truncation, not
        regeneration) — what makes trace truncation and ``with_n_jobs``
        slicing consistent with generating at the smaller size."""
        process = PoissonArrivals(mean_interarrival_cycles=400.0, seed=3)
        assert process.generate(48)[:12] == process.generate(12)


# --------------------------------------------------------------------------- #
# Trace files (SWF conventions)
# --------------------------------------------------------------------------- #
class TestTraceFiles:
    def test_round_trip(self, tmp_path):
        """write -> load -> identical Workload."""
        arrivals = PoissonArrivals(500.0, seed=5).generate(24)
        trace = tmp_path / "poisson.swf"
        trace.write_text(
            "; SWF-style header comment\n\n"
            + "".join(
                f"{job} {t} 1 -1 -1\n" for job, t in enumerate(arrivals, start=1)
            )
        )
        assert load_arrival_trace(trace) == arrivals
        workload = _chain(n_jobs=24).with_arrivals(arrivals)
        from_trace = _chain(n_jobs=24).with_arrivals(
            TraceArrivals(str(trace)).generate(24)
        )
        assert from_trace == workload
        assert content_digest(from_trace) == content_digest(workload)

    def test_longer_trace_truncates_shorter_raises(self, tmp_path):
        trace = tmp_path / "t.swf"
        trace.write_text("".join(f"{j} {j * 100}\n" for j in range(10)))
        assert TraceArrivals(str(trace)).generate(4) == (0, 100, 200, 300)
        with pytest.raises(ArrivalError, match="10 records.*12 jobs"):
            TraceArrivals(str(trace)).generate(12)

    @pytest.mark.parametrize(
        "line,complaint",
        [
            ("justonefield", "expected at least 2 fields"),
            ("3 soon", "not an integer"),
            ("3 -7", "negative"),
            ("3 50", "decreases below"),
        ],
    )
    def test_malformed_line_names_file_and_line(self, tmp_path, line, complaint):
        trace = tmp_path / "bad.swf"
        trace.write_text("; header\n1 100\n2 200\n" + line + "\n")
        with pytest.raises(ArrivalTraceError, match=complaint) as excinfo:
            load_arrival_trace(trace)
        assert excinfo.value.line_no == 4  # 1-based, comments counted
        assert excinfo.value.path == str(trace)
        assert f"{trace}:4:" in str(excinfo.value)

    def test_empty_trace_raises(self, tmp_path):
        trace = tmp_path / "empty.swf"
        trace.write_text("; nothing but comments\n\n")
        with pytest.raises(ArrivalError, match="no records"):
            load_arrival_trace(trace)

    def test_missing_trace_raises(self, tmp_path):
        with pytest.raises(ArrivalError, match="cannot read"):
            load_arrival_trace(tmp_path / "nope.swf")


# --------------------------------------------------------------------------- #
# The Workload field and resolve_arrivals spellings
# --------------------------------------------------------------------------- #
class TestWorkloadField:
    def test_closed_by_default(self):
        workload = _chain(n_jobs=12)
        assert workload.arrival_cycles == ()
        assert not workload.is_open

    def test_all_zero_schedule_is_still_open(self):
        workload = _chain(n_jobs=12).with_arrivals((0,) * 12)
        assert workload.is_open

    def test_length_must_match_n_jobs(self):
        with pytest.raises(ValueError, match="5 entries for 12 jobs"):
            _chain(n_jobs=12).with_arrivals((0,) * 5)

    def test_decreasing_schedule_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            _chain(n_jobs=3).with_arrivals((0, 100, 50))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _chain(n_jobs=3).with_arrivals((-1, 0, 0))

    def test_with_n_jobs_slices_schedule(self):
        workload = _chain(n_jobs=12).with_arrivals(tuple(range(0, 1200, 100)))
        smaller = workload.with_n_jobs(5)
        assert smaller.arrival_cycles == (0, 100, 200, 300, 400)
        with pytest.raises(ValueError):
            workload.with_n_jobs(24)  # cannot grow an open workload

    def test_resolve_spellings(self, tmp_path):
        process = PoissonArrivals(250.0, seed=7)
        assert resolve_arrivals(None) is None
        assert resolve_arrivals(process) is process
        spec = {"process": "poisson", "mean_interarrival_cycles": 250.0, "seed": 7}
        assert resolve_arrivals(spec) == process
        assert resolve_arrivals(tuple(sorted(spec.items()))) == process
        trace = tmp_path / "t.swf"
        assert resolve_arrivals(str(trace)) == TraceArrivals(str(trace))
        with pytest.raises(ArrivalError, match="unknown arrival process"):
            resolve_arrivals({"process": "fractal"})
        with pytest.raises(ArrivalError, match="'process' key"):
            resolve_arrivals({"interval_cycles": 3})
        with pytest.raises(ArrivalError, match="invalid poisson"):
            resolve_arrivals({"process": "poisson", "rate": 1.0})


# --------------------------------------------------------------------------- #
# Steady-state fast-forward refusal
# --------------------------------------------------------------------------- #
class TestFastForwardRefusal:
    def test_probe_refuses_open_workloads(self):
        from repro.sim.steady_state import REFUSAL_OPEN_WORKLOAD, FastForwardRefusal

        workload = _chain(n_jobs=96, replication=2)
        engaged = fast_forward_simulate(ARCH64, workload)
        assert not isinstance(engaged, FastForwardRefusal)  # periodic
        open_workload = workload.with_arrivals(
            DeterministicArrivals(300).generate(96)
        )
        refusal = fast_forward_simulate(ARCH64, open_workload)
        assert isinstance(refusal, FastForwardRefusal)
        assert refusal.reason == REFUSAL_OPEN_WORKLOAD

    @pytest.mark.parametrize("engine", ["python", "array", "table"])
    def test_simulate_takes_verified_fallback(self, engine):
        open_workload = _chain(n_jobs=96, replication=2).with_arrivals(
            PoissonArrivals(400.0, seed=2).generate(96)
        )
        full = simulate(ARCH64, open_workload, engine=engine)
        ff = simulate(ARCH64, open_workload, fast_forward=True, engine=engine)
        assert not full.fast_forwarded
        assert not ff.fast_forwarded  # provenance: the full run really ran
        assert ff.fast_forward_refusal is not None  # ...and says why
        assert result_mismatches(full, ff, ignore_provenance=True) == []
        assert len(ff.request_latencies()) == 96
        # the closed twin of the same pipeline still fast-forwards
        closed = simulate(
            ARCH64, _chain(n_jobs=96, replication=2),
            fast_forward=True, engine=engine,
        )
        assert closed.fast_forwarded


# --------------------------------------------------------------------------- #
# Closed-batch back-compat: fingerprints and records
# --------------------------------------------------------------------------- #
#: content digest of ``_chain(n_jobs=48, replication=2)`` and the simulation
#: key built from it, computed at the pre-serving tree (PR 8 HEAD).  The
#: ``arrival_cycles`` field is fingerprint-omitted at its default, so both
#: must stay byte-identical forever; a change here silently invalidates
#: every closed-batch artifact store.
PINNED_CHAIN_DIGEST = "b7e0472f539fb6db2f63874e0d370a339809faf6284654fe08cc09f5bf379665"
PINNED_SIMULATION_KEY = "e491508512e8e799f9bb164dafe2e248bd98ef48c3ffbaaceffb031e6b5ffa48"


class TestClosedBatchBackCompat:
    def test_closed_digest_byte_identical_to_pre_serving_tree(self):
        workload = _chain(n_jobs=48, replication=2)
        assert content_digest(workload) == PINNED_CHAIN_DIGEST

    def test_closed_simulation_key_byte_identical_to_pre_serving_tree(self):
        digest = content_digest(_chain(n_jobs=48, replication=2))
        assert simulation_key(arch_key(ARCH64), digest, True, 2) == (
            PINNED_SIMULATION_KEY
        )

    def test_open_digest_differs_and_depends_on_schedule(self):
        closed = _chain(n_jobs=48, replication=2)
        open_a = closed.with_arrivals(DeterministicArrivals(300).generate(48))
        open_b = closed.with_arrivals(DeterministicArrivals(301).generate(48))
        digests = {content_digest(closed), content_digest(open_a),
                   content_digest(open_b)}
        assert len(digests) == 3

    def test_closed_results_bit_identical_to_pre_serving_behaviour(self):
        """The launch-gating hooks are inert on closed workloads: a closed
        run must stay bit-identical across all three engines (the gate adds
        zero events), and must record no request completions."""
        workload = _chain(n_jobs=48, replication=2)
        python = simulate(ARCH64, workload, engine="python")
        for engine in ("array", "table"):
            assert result_mismatches(python, simulate(ARCH64, workload,
                                                      engine=engine)) == []
        assert python.request_latencies() == ()
        assert python.tracer.request_completions == {}

    def test_pre_serving_metric_records_round_trip(self):
        """A record written before the serving fields existed still loads
        (the new fields default to None) and re-serialises cleanly."""
        workload = _chain(n_jobs=48, replication=2)
        metrics = compute_metrics(simulate(ARCH64, workload))
        payload = metrics.as_record()
        for field in ("request_latency_p50_ms", "request_latency_p95_ms",
                      "request_latency_p99_ms", "sustained_qps", "saturated"):
            assert payload.pop(field) is None
        old = PerformanceMetrics.from_record(payload)  # pre-serving payload
        assert old == metrics
        assert "request_latency_p50_ms" not in old.as_dict()


# --------------------------------------------------------------------------- #
# Serving metrics
# --------------------------------------------------------------------------- #
class TestServingMetrics:
    def test_percentile_nearest_rank(self):
        ordered = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile(ordered, 0.50) == 50
        assert percentile(ordered, 0.95) == 100
        assert percentile(ordered, 0.99) == 100
        assert percentile([7], 0.99) == 7
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_open_run_reports_serving_metrics(self):
        workload = _chain(n_jobs=96, replication=2).with_arrivals(
            PoissonArrivals(900.0, seed=4).generate(96)
        )
        result = simulate(ARCH64, workload)
        metrics = compute_metrics(result)
        assert metrics.request_latency_p50_ms is not None
        assert (metrics.request_latency_p50_ms <= metrics.request_latency_p95_ms
                <= metrics.request_latency_p99_ms)
        assert metrics.sustained_qps > 0
        assert isinstance(metrics.saturated, bool)
        rendered = metrics.as_dict()
        assert rendered["request_latency_p99_ms"] == metrics.request_latency_p99_ms
        assert rendered["sustained_qps"] == metrics.sustained_qps
        # the percentiles are exact cycle latencies scaled to milliseconds
        latencies = sorted(result.request_latencies())
        cycle_ms = ARCH64.cycle_time_ns * 1e-6
        assert metrics.request_latency_p50_ms == (
            percentile(latencies, 0.50) * cycle_ms
        )

    def test_saturation_flag_tracks_offered_load(self):
        workload = _chain(n_jobs=96, replication=2)
        service = simulate(ARCH64, workload).steady_state_cycles_per_job()
        slow = workload.with_arrivals(
            DeterministicArrivals(int(service * 4) + 1).generate(96)
        )
        fast = workload.with_arrivals(
            DeterministicArrivals(max(1, int(service // 4))).generate(96)
        )
        assert compute_metrics(simulate(ARCH64, slow)).saturated is False
        assert compute_metrics(simulate(ARCH64, fast)).saturated is True
        # sojourn of every request is positive and exact in cycles
        latencies = simulate(ARCH64, slow).request_latencies()
        assert len(latencies) == 96 and min(latencies) > 0
