"""Bit-identity and unit coverage of the compiled table lane.

The table kernel (``engine="table"``) compiles ``_StageRuntime``'s per-job
lifecycle into integer transition tables (:mod:`repro.sim.system_table`)
dispatched through :class:`~repro.sim.engine_table.TableEngine`'s opcode
lane.  Its acceptance contract is the same as the array kernel's: *bit
identical results* on every workload, contention mode and buffer depth —
the existing two-way harness (``tests/test_sim_kernel_equivalence.py``)
stays untouched and this module extends the same matrix to three kernels.

Coverage layers:

* ``TableEngine`` unit tests: opcode scheduling/deferral semantics, FIFO
  interleaving with callables and callback rows, mid-batch ``max_events``
  truncation with in-order resume, the exception-safe tail requeue, and
  post-run :meth:`~repro.sim.engine_array.ArrayEngine.reset`;
* the synthetic + zoo shapes shared with the fast-forward suite, table vs
  both other kernels;
* the seeded randomized property sweep (same generator and seeds as the
  two-way harness), table vs the object kernel reference;
* bounded runs: the steady-state fast-forward on top of the table kernel
  (probing drives ``until``/``max_events`` through the callback-lane
  fallback);
* the ``engine`` cache-key axis with three distinct values.
"""

import pytest

from repro.scenarios.fingerprint import simulation_key
from repro.sim import assert_results_identical, result_mismatches, simulate
from repro.sim.engine import SimulationError
from repro.sim.engine_table import K_OP_BASE, TableEngine
from repro.sim.system import SIMULATION_ENGINES

from test_sim_fast_forward import ARCH64, SYNTHETIC, ZOO, _chain, _zoo_workload
from test_sim_kernel_equivalence import _random_workload
import random


# --------------------------------------------------------------------------- #
# TableEngine: the opcode lane
# --------------------------------------------------------------------------- #
class TestTableEngine:
    def _engine(self, log):
        engine = TableEngine()
        engine.set_handlers((lambda arg: log.append(arg),))
        return engine

    def test_sched_op_dispatches_through_the_jump_table(self):
        log = []
        engine = self._engine(log)
        engine.sched_op(5, K_OP_BASE, "b")
        engine.sched_op(2, K_OP_BASE, "a")
        engine.sched_op(5, K_OP_BASE, "c")
        assert engine.run() == 5
        assert log == ["a", "b", "c"]
        assert engine.events_processed == 3

    def test_op_rows_interleave_with_callables_in_fifo_order(self):
        log = []
        engine = self._engine(log)
        engine.at(3, lambda: log.append("cb1"))
        engine.sched_op(3, K_OP_BASE, "op")
        engine.at(3, lambda: log.append("cb2"))
        engine.run()
        assert log == ["cb1", "op", "cb2"]

    def test_defer_op_requeues_at_dispatch_time(self):
        # the deferral is two events: the row dispatches at time 2 and
        # re-queues itself into bucket 5, landing *after* the callable
        # that was already scheduled there.
        log = []
        engine = self._engine(log)
        engine.at(5, lambda: log.append("resident"))
        engine.defer_op(2, 3, K_OP_BASE, "deferred")
        engine.run()
        assert log == ["resident", "deferred"]
        assert engine.events_processed == 3  # callable + row twice

    def test_zero_cycle_deferral_appends_to_the_active_bucket_tail(self):
        log = []
        engine = self._engine(log)
        engine.defer_op(0, 0, K_OP_BASE, "deferred")
        engine.at(0, lambda: log.append("same-bucket"))
        engine.run()
        assert log == ["same-bucket", "deferred"]

    def test_max_events_truncates_between_op_rows_and_resumes_in_order(self):
        log = []
        engine = self._engine(log)
        for tag in ("a", "b", "c"):
            engine.sched_op(4, K_OP_BASE, tag)
        engine.run(max_events=2)  # bounded: delegates to the array loop
        assert log == ["a", "b"]
        engine.run()  # the unbounded inlined loop resumes mid-bucket
        assert log == ["a", "b", "c"]
        assert engine.now == 4

    def test_handler_exception_requeues_the_unprocessed_tail(self):
        log = []
        engine = TableEngine()

        def boom(arg):
            raise RuntimeError(arg)

        engine.set_handlers((lambda arg: log.append(arg), boom))
        engine.sched_op(1, K_OP_BASE + 1, "kaboom")
        engine.sched_op(1, K_OP_BASE, "survivor")
        with pytest.raises(RuntimeError, match="kaboom"):
            engine.run()
        engine.run()
        assert log == ["survivor"]

    def test_scheduling_in_the_past_and_negative_deferrals_raise(self):
        engine = self._engine([])
        engine.sched_op(3, K_OP_BASE, None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.sched_op(1, K_OP_BASE, None)
        with pytest.raises(SimulationError):
            engine.defer_op(1, 2, K_OP_BASE, None)
        with pytest.raises(SimulationError):
            engine.defer_op(5, -1, K_OP_BASE, None)

    def test_reset_compacts_both_lanes_and_engine_stays_usable(self):
        log = []
        engine = self._engine(log)
        engine.sched_op(1, K_OP_BASE, "x")
        engine.defer_at(1, 4, lambda: log.append("y"))
        engine.run()
        assert log == ["x", "y"]
        engine.reset()
        assert len(engine.pending_rows()) == 0
        engine.sched_op(6, K_OP_BASE, "z")
        engine.run()
        assert log == ["x", "y", "z"]

    def test_reset_with_pending_events_raises(self):
        engine = self._engine([])
        engine.sched_op(9, K_OP_BASE, None)
        with pytest.raises(SimulationError):
            engine.reset()


# --------------------------------------------------------------------------- #
# Three-way bit identity on known shapes
# --------------------------------------------------------------------------- #
class TestThreeWayKnownShapes:
    @pytest.mark.parametrize(
        "name,workload,_must_engage",
        SYNTHETIC,
        ids=[case[0] for case in SYNTHETIC],
    )
    @pytest.mark.parametrize("model_contention", [True, False], ids=["cont", "nocont"])
    def test_synthetic_pipelines_identical(self, name, workload, _must_engage,
                                           model_contention):
        python = simulate(ARCH64, workload, model_contention, engine="python")
        table = simulate(ARCH64, workload, model_contention, engine="table")
        assert result_mismatches(python, table) == []

    @pytest.mark.parametrize(
        "name,model,shape,level,batch,clusters,classes,crossbar,_must_engage",
        ZOO,
        ids=[case[0] for case in ZOO],
    )
    def test_zoo_mappings_identical(
        self, name, model, shape, level, batch, clusters, classes, crossbar,
        _must_engage,
    ):
        arch, workload = _zoo_workload(
            model, shape, level, batch, clusters, classes, crossbar
        )
        array = simulate(arch, workload, engine="array")
        table = simulate(arch, workload, engine="table")
        assert_results_identical(array, table)

    def test_payloads_identical_including_stage_completions(self):
        arch, workload = _zoo_workload("tiny_cnn", (3, 32, 32), "final", 16, 16, 10, 128)
        python = simulate(arch, workload, engine="python")
        table = simulate(arch, workload, engine="table")
        assert result_mismatches(python, table) == []
        python_payload = python.to_payload()
        table_payload = table.to_payload()
        assert type(python_payload.pop("tracer")) is type(table_payload.pop("tracer"))
        assert python_payload == table_payload


# --------------------------------------------------------------------------- #
# Seeded randomized property sweep (same seeds as the two-way harness)
# --------------------------------------------------------------------------- #
class TestThreeWayRandomized:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_pipelines_identical(self, seed):
        rng = random.Random(1000 + seed)
        workload = _random_workload(rng)
        model_contention = rng.random() < 0.7
        buffer_depth = rng.choice([1, 2, 5])
        python = simulate(
            ARCH64, workload, model_contention, buffer_depth, engine="python"
        )
        table = simulate(
            ARCH64, workload, model_contention, buffer_depth, engine="table"
        )
        mismatches = result_mismatches(python, table)
        assert mismatches == [], f"seed {seed}: {mismatches}"


# --------------------------------------------------------------------------- #
# Bounded runs: fast-forward probing on top of the table kernel
# --------------------------------------------------------------------------- #
class TestBoundedRunEquivalence:
    @pytest.mark.parametrize(
        "name,workload,must_engage",
        SYNTHETIC,
        ids=[case[0] for case in SYNTHETIC],
    )
    def test_fast_forward_on_table_kernel(self, name, workload, must_engage):
        full = simulate(ARCH64, workload, engine="table")
        ff = simulate(ARCH64, workload, fast_forward=True, engine="table")
        if must_engage:
            assert ff.fast_forwarded, f"{name}: fast-forward failed to engage"
        assert result_mismatches(full, ff, ignore_provenance=True) == []

    def test_fast_forward_identical_across_all_kernels(self):
        workload = _chain(n_jobs=96, replication=2)
        results = {
            engine: simulate(ARCH64, workload, fast_forward=True, engine=engine)
            for engine in SIMULATION_ENGINES
        }
        assert all(r.fast_forwarded for r in results.values())
        assert result_mismatches(results["python"], results["table"]) == []
        assert result_mismatches(results["array"], results["table"]) == []


# --------------------------------------------------------------------------- #
# The engine axis: three distinct, separately-keyed values
# --------------------------------------------------------------------------- #
class TestEngineAxis:
    def test_table_is_a_registered_engine(self):
        assert SIMULATION_ENGINES == ("array", "python", "table")

    def test_three_engines_key_separately(self):
        keys = {
            simulation_key("a", "w", True, 2, engine=engine)
            for engine in SIMULATION_ENGINES
        }
        assert len(keys) == 3

    def test_unknown_engine_rejected(self):
        workload = _chain(n_jobs=4)
        with pytest.raises(ValueError, match="unknown simulation engine"):
            simulate(ARCH64, workload, engine="compiled")
