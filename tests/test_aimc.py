"""Tests for the analog crossbar functional models (repro.aimc)."""

import numpy as np
import pytest

from repro.aimc import (
    ADCSpec,
    AnalogExecutor,
    Crossbar,
    DACSpec,
    NoiseModel,
    PCMArray,
    PCMCellSpec,
    TiledMatrix,
)
from repro.dnn import ReferenceExecutor, initialize_parameters, models, random_input


class TestPCM:
    def test_ideal_programming_is_exact(self):
        array = PCMArray(8, 8, seed=0)
        weights = np.random.default_rng(0).normal(size=(8, 8))
        array.program(weights, ideal=True)
        assert array.programming_error(weights) < 1e-12

    def test_noisy_programming_close_but_not_exact(self):
        cell = PCMCellSpec(programming_noise_frac=0.02)
        array = PCMArray(32, 32, cell=cell, seed=1)
        weights = np.random.default_rng(1).normal(size=(32, 32))
        array.program(weights)
        error = array.programming_error(weights)
        assert 0 < error < 0.2 * np.abs(weights).max()

    def test_drift_reduces_magnitude(self):
        array = PCMArray(16, 16, seed=2)
        weights = np.abs(np.random.default_rng(2).normal(size=(16, 16)))
        array.program(weights, ideal=True)
        fresh = array.effective_weights()
        drifted = array.effective_weights(time_s=1e6)
        assert np.linalg.norm(drifted) < np.linalg.norm(fresh)

    def test_unprogrammed_read_raises(self):
        with pytest.raises(RuntimeError):
            PCMArray(4, 4).effective_weights()

    def test_shape_mismatch_raises(self):
        array = PCMArray(4, 4)
        with pytest.raises(ValueError):
            array.program(np.ones((2, 2)))

    def test_invalid_cell_spec(self):
        with pytest.raises(ValueError):
            PCMCellSpec(g_max_us=0.0, g_min_us=0.0)

    def test_deterministic_reads_are_cached(self):
        """Same drift time -> same matrix object; the values stay exact."""
        array = PCMArray(8, 8, seed=3)
        weights = np.random.default_rng(3).normal(size=(8, 8))
        array.program(weights, ideal=True)
        first = array.effective_weights(time_s=3600.0)
        assert array.effective_weights(time_s=3600.0) is first
        # a different drift time misses and replaces the cache
        other = array.effective_weights(time_s=1e6)
        assert other is not first
        assert array.effective_weights(time_s=1e6) is other
        np.testing.assert_array_equal(other, array.effective_weights(time_s=1e6))

    def test_cache_invalidated_by_reprogramming(self):
        array = PCMArray(8, 8, seed=4)
        rng = np.random.default_rng(4)
        array.program(rng.normal(size=(8, 8)), ideal=True)
        before = array.effective_weights()
        new_weights = rng.normal(size=(8, 8))
        array.program(new_weights, ideal=True)
        after = array.effective_weights()
        assert after is not before
        np.testing.assert_allclose(after, new_weights, atol=1e-12)

    def test_read_noise_bypasses_the_cache(self):
        array = PCMArray(8, 8, seed=5)
        array.program(np.random.default_rng(5).normal(size=(8, 8)), ideal=True)
        deterministic = array.effective_weights()
        noisy_a = array.effective_weights(read_noise=True)
        noisy_b = array.effective_weights(read_noise=True)
        assert noisy_a is not deterministic
        assert not np.array_equal(noisy_a, noisy_b)  # fresh noise every read
        # the deterministic cache survives noisy reads untouched
        assert array.effective_weights() is deterministic


class TestConverters:
    def test_dac_is_idempotent_on_grid(self):
        dac = DACSpec(bits=8)
        values = np.linspace(-1, 1, 11)
        once = dac.convert(values, full_scale=1.0)
        twice = dac.convert(once, full_scale=1.0)
        assert np.allclose(once, twice)

    def test_dac_quantisation_error_bounded(self):
        dac = DACSpec(bits=8)
        values = np.random.default_rng(0).uniform(-1, 1, 1000)
        error = np.abs(dac.convert(values, full_scale=1.0) - values)
        step = 1.0 / ((dac.n_levels - 1) // 2)
        assert error.max() <= step / 2 + 1e-12

    def test_adc_clips_out_of_range(self):
        adc = ADCSpec(bits=8)
        out = adc.convert(np.array([10.0, -10.0]), full_scale=1.0)
        assert out.max() <= 1.0 and out.min() >= -1.0

    def test_zero_input_passthrough(self):
        assert np.all(DACSpec().convert(np.zeros(4)) == 0)
        assert np.all(ADCSpec().convert(np.zeros(4)) == 0)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            DACSpec(bits=0)
        with pytest.raises(ValueError):
            ADCSpec(bits=32)


class TestCrossbar:
    def test_ideal_mvm_matches_matmul(self):
        noise = NoiseModel.ideal()
        crossbar = Crossbar(32, 16, noise=noise, seed=0)
        weights = np.random.default_rng(0).normal(size=(32, 16))
        crossbar.program(weights)
        x = np.random.default_rng(1).normal(size=32)
        assert np.allclose(crossbar.mvm(x), x @ weights, atol=1e-10)

    def test_batched_mvm(self):
        crossbar = Crossbar(16, 8, noise=NoiseModel.ideal(), seed=0)
        weights = np.random.default_rng(2).normal(size=(16, 8))
        crossbar.program(weights)
        batch = np.random.default_rng(3).normal(size=(5, 16))
        assert np.allclose(crossbar.mvm(batch), batch @ weights, atol=1e-10)

    def test_noisy_mvm_close_to_ideal(self):
        weights = np.random.default_rng(4).normal(size=(64, 64))
        x = np.random.default_rng(5).normal(size=64)
        noisy = Crossbar(64, 64, noise=NoiseModel.typical(), seed=1)
        noisy.program(weights)
        reference = x @ weights
        error = np.linalg.norm(noisy.mvm(x) - reference) / np.linalg.norm(reference)
        assert error < 0.25

    def test_partial_fill_and_utilization(self):
        crossbar = Crossbar(64, 64, noise=NoiseModel.ideal())
        crossbar.program(np.ones((10, 20)))
        assert crossbar.utilization == pytest.approx(200 / 4096)
        out = crossbar.mvm(np.ones(10))
        assert out.shape == (20,)

    def test_oversized_weights_rejected(self):
        with pytest.raises(ValueError):
            Crossbar(8, 8).program(np.ones((9, 8)))

    def test_unprogrammed_mvm_rejected(self):
        with pytest.raises(RuntimeError):
            Crossbar(8, 8).mvm(np.ones(8))

    def test_wrong_input_length_rejected(self):
        crossbar = Crossbar(8, 8, noise=NoiseModel.ideal())
        crossbar.program(np.ones((8, 8)))
        with pytest.raises(ValueError):
            crossbar.mvm(np.ones(4))


class TestTiledMatrix:
    def test_tile_count_matches_splits(self):
        weights = np.random.default_rng(0).normal(size=(300, 500))
        tiled = TiledMatrix(weights, crossbar_rows=256, crossbar_cols=256,
                            noise=NoiseModel.ideal(), seed=0)
        assert tiled.n_row_splits == 2
        assert tiled.n_col_splits == 2
        assert tiled.n_crossbars == 4

    def test_tiled_mvm_matches_matmul(self):
        weights = np.random.default_rng(1).normal(size=(130, 70))
        tiled = TiledMatrix(weights, crossbar_rows=64, crossbar_cols=64,
                            noise=NoiseModel.ideal(), seed=0)
        x = np.random.default_rng(2).normal(size=130)
        assert np.allclose(tiled.mvm(x), x @ weights, atol=1e-9)

    def test_utilization_below_one_for_ragged_split(self):
        weights = np.ones((100, 100))
        tiled = TiledMatrix(weights, crossbar_rows=64, crossbar_cols=64,
                            noise=NoiseModel.ideal())
        assert 0 < tiled.utilization < 1

    def test_input_length_validation(self):
        tiled = TiledMatrix(np.ones((10, 10)), crossbar_rows=8, crossbar_cols=8,
                            noise=NoiseModel.ideal())
        with pytest.raises(ValueError):
            tiled.mvm(np.ones(9))


class TestAnalogExecutor:
    def test_ideal_executor_matches_reference(self, tiny_graph):
        params = initialize_parameters(tiny_graph, seed=0)
        image = random_input(tiny_graph, seed=1)
        executor = AnalogExecutor(
            tiny_graph, parameters=params, noise=NoiseModel.ideal(),
            crossbar_rows=64, crossbar_cols=64, seed=0,
        )
        assert executor.compare_with_reference(image) < 1e-9

    def test_noisy_executor_close_to_reference(self, tiny_graph):
        params = initialize_parameters(tiny_graph, seed=0)
        image = random_input(tiny_graph, seed=1)
        executor = AnalogExecutor(
            tiny_graph, parameters=params, noise=NoiseModel.typical(),
            crossbar_rows=64, crossbar_cols=64, seed=0,
        )
        reference = ReferenceExecutor(tiny_graph, parameters=params)
        golden = reference.run_output(image)
        error = executor.compare_with_reference(image)
        assert error < 0.5 * np.abs(golden).max() + 0.5

    def test_total_crossbars_positive(self, tiny_graph):
        executor = AnalogExecutor(tiny_graph, noise=NoiseModel.ideal(),
                                  crossbar_rows=64, crossbar_cols=64)
        assert executor.total_crossbars >= len(tiny_graph.analog_nodes())

    def test_noise_presets(self):
        assert not NoiseModel.ideal().programming_noise
        assert NoiseModel.typical().programming_noise
        assert NoiseModel.pessimistic().adc.bits < NoiseModel.typical().adc.bits
        drifted = NoiseModel.typical().with_drift(100.0)
        assert drifted.drift_time_s == 100.0

    def test_invalid_noise_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(ir_drop_factor=0.0)
        with pytest.raises(ValueError):
            NoiseModel(drift_time_s=-1.0)
