"""Unit tests for the architecture description package (repro.arch)."""

import math

import pytest

from repro.arch import (
    ArchConfig,
    AreaModel,
    ClusterSpec,
    CoreSpec,
    EnergyBreakdown,
    EnergyModel,
    HBMSpec,
    IMASpec,
    InterconnectSpec,
    QuadrantTopology,
)


class TestIMASpec:
    def test_default_matches_table1(self):
        ima = IMASpec()
        assert ima.rows == 256
        assert ima.cols == 256
        assert ima.analog_latency_ns == 130.0
        assert ima.n_streamer_ports == 16

    def test_capacity_is_64k_parameters(self):
        assert IMASpec().capacity_params == 64 * 1024

    def test_peak_tops_is_about_one(self):
        # 2 * 256 * 256 ops every 130 ns is just above 1 TOPS.
        assert 0.9 < IMASpec().peak_tops < 1.2

    def test_row_and_col_splits(self):
        ima = IMASpec()
        assert ima.row_splits(256) == 1
        assert ima.row_splits(257) == 2
        assert ima.col_splits(512) == 2
        assert ima.crossbars_needed(4608, 512) == 18 * 2

    def test_utilization_full_and_partial(self):
        ima = IMASpec()
        assert ima.utilization(256, 256) == pytest.approx(1.0)
        assert ima.utilization(128, 128) == pytest.approx(0.25)

    def test_stream_cycles(self):
        ima = IMASpec()
        assert ima.stream_cycles(0) == 0
        assert ima.stream_cycles(16) == 1
        assert ima.stream_cycles(17) == 2

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            IMASpec(rows=0)
        with pytest.raises(ValueError):
            IMASpec(analog_latency_ns=-1)
        with pytest.raises(ValueError):
            IMASpec().row_splits(0)


class TestCoreAndCluster:
    def test_core_cycle_time(self):
        cores = CoreSpec()
        assert cores.cycle_time_ns == pytest.approx(1.0)

    def test_elementwise_scales_with_clusters(self):
        cores = CoreSpec()
        single = cores.elementwise_cycles(80_000, n_clusters=1)
        quad = cores.elementwise_cycles(80_000, n_clusters=4)
        assert quad < single
        assert quad >= cores.kernel_overhead_cycles

    def test_reduction_cycles_grow_with_operands(self):
        cores = CoreSpec()
        few = cores.reduction_cycles(1000, 2)
        many = cores.reduction_cycles(1000, 8)
        assert many > few

    def test_reduction_requires_operand(self):
        with pytest.raises(ValueError):
            CoreSpec().reduction_cycles(10, 0)

    def test_cluster_defaults(self):
        cluster = ClusterSpec()
        assert cluster.l1_size_bytes == 1 << 20
        assert cluster.cores.n_cores == 16
        assert cluster.analog_latency_cycles == 130

    def test_fits_in_l1(self):
        cluster = ClusterSpec()
        assert cluster.fits_in_l1(1 << 20)
        assert not cluster.fits_in_l1((1 << 20) + 1)
        assert not cluster.fits_in_l1(-1)


class TestInterconnect:
    def test_default_hosts_512_clusters(self):
        assert InterconnectSpec().max_clusters == 512

    def test_from_factors_round_trip(self):
        spec = InterconnectSpec.from_factors([1, 8, 4, 4, 4])
        assert spec.max_clusters == 512
        assert spec.level("wrapper").quadrant_factor == 8

    def test_from_factors_validates_lengths(self):
        with pytest.raises(ValueError):
            InterconnectSpec.from_factors([1, 8], data_widths=[64])

    def test_route_same_cluster_is_empty(self):
        topo = QuadrantTopology()
        route = topo.route(3, 3)
        assert route.n_hops == 0
        assert route.hop_latency_cycles == 0

    def test_route_neighbours_short(self):
        topo = QuadrantTopology()
        near = topo.route(0, 1)
        far = topo.route(0, 511)
        assert near.n_hops < far.n_hops
        assert near.hop_latency_cycles < far.hop_latency_cycles

    def test_route_is_symmetric_in_length(self):
        topo = QuadrantTopology()
        assert topo.route(5, 200).n_hops == topo.route(200, 5).n_hops

    def test_route_to_hbm_traverses_all_levels(self):
        topo = QuadrantTopology()
        route = topo.route_to_hbm(100)
        # cluster->l1->l2->l3->wrapper->hbm_link/hbm = 6 directed links.
        assert route.n_hops == 6
        assert route.hop_latency_cycles >= 100

    def test_route_from_hbm_mirrors_route_to_hbm(self):
        topo = QuadrantTopology()
        up = topo.route_to_hbm(42)
        down = topo.route_from_hbm(42)
        assert up.n_hops == down.n_hops
        assert up.hop_latency_cycles == down.hop_latency_cycles

    def test_serialization_cycles(self):
        topo = QuadrantTopology()
        route = topo.route(0, 64)
        assert route.serialization_cycles(64) == 1
        assert route.serialization_cycles(65) == 2
        assert route.zero_load_cycles(0) == route.hop_latency_cycles

    def test_invalid_cluster_raises(self):
        topo = QuadrantTopology(n_clusters=16)
        with pytest.raises(ValueError):
            topo.route(0, 16)

    def test_all_links_unique(self):
        topo = QuadrantTopology(n_clusters=64)
        links = topo.all_links()
        assert len(links) == len(set(links))
        assert any("hbm" in link for link in links)

    def test_locality_of_consecutive_clusters(self):
        topo = QuadrantTopology()
        assert topo.hop_distance(0, 1) <= topo.hop_distance(0, 100)


class TestHBM:
    def test_defaults(self):
        hbm = HBMSpec()
        assert hbm.size_bytes == int(1.5 * (1 << 30))
        assert hbm.access_latency_cycles == 100

    def test_burst_accounting(self):
        hbm = HBMSpec(max_burst_bytes=1024)
        assert hbm.n_bursts(0) == 0
        assert hbm.n_bursts(1024) == 1
        assert hbm.n_bursts(1025) == 2
        assert hbm.service_cycles(1024) == 100 + 16
        assert hbm.service_cycles(2048) == 2 * 100 + 32

    def test_zero_load_cycles(self):
        hbm = HBMSpec()
        assert hbm.zero_load_cycles(64) == 101
        assert hbm.serialization_cycles(0) == 0

    def test_fits(self):
        hbm = HBMSpec()
        assert hbm.fits(1 << 30)
        assert not hbm.fits(2 << 30)


class TestAreaEnergy:
    def test_cluster_area_near_paper(self):
        # 512 clusters should land near the 480 mm2 the paper reports.
        model = AreaModel()
        assert 400 < model.system_mm2(512) < 560

    def test_breakdown_sums_to_total(self):
        model = AreaModel()
        breakdown = model.breakdown(8)
        partial = sum(v for k, v in breakdown.items() if k != "total")
        assert partial == pytest.approx(breakdown["total"])

    def test_energy_components_positive(self):
        model = EnergyModel()
        assert model.analog_energy_mj(1e9) > 0
        assert model.hbm_traffic_energy_mj(1e6) > model.noc_traffic_energy_mj(1e6)

    def test_static_energy_scales_with_time(self):
        model = EnergyModel()
        short = model.static_energy_mj(100, 400, 1e-3)
        long = model.static_energy_mj(100, 400, 2e-3)
        assert long == pytest.approx(2 * short)

    def test_energy_breakdown_total(self):
        breakdown = EnergyBreakdown(analog_mj=1.0, digital_mj=2.0, hbm_traffic_mj=0.5)
        assert breakdown.total_mj == pytest.approx(3.5)
        assert breakdown.as_dict()["total"] == pytest.approx(3.5)


class TestArchConfig:
    def test_paper_configuration(self, paper_arch):
        assert paper_arch.n_clusters == 512
        assert paper_arch.total_cores == 8192
        assert paper_arch.ima.rows == 256
        assert 450 < paper_arch.peak_tops < 600

    def test_table1_contents(self, paper_arch):
        table = paper_arch.table1()
        assert table["Number of clusters"] == "512"
        assert table["IMA crossbar size"] == "256x256"
        assert "130" in table["Analog latency (MVM operation)"]
        assert "(1, 8, 4, 4, 4)" in table["Quadrant factor (HBM link,wrapper,L3,L2,L1)"]

    def test_scaled_configuration(self):
        arch = ArchConfig.scaled(n_clusters=64, crossbar_size=128, cores_per_cluster=8)
        assert arch.n_clusters == 64
        assert arch.ima.rows == 128
        assert arch.cores.n_cores == 8
        assert arch.interconnect.max_clusters >= 64

    def test_scaled_rejects_undersized_interconnect(self):
        with pytest.raises(ValueError):
            ArchConfig.scaled(n_clusters=64, quadrant_factors=[1, 1, 2, 2, 2])

    def test_with_clusters(self, paper_arch):
        smaller = paper_arch.with_clusters(128)
        assert smaller.n_clusters == 128
        assert smaller.ima.rows == paper_arch.ima.rows

    def test_topology_matches_cluster_count(self, small_arch):
        topo = small_arch.topology()
        assert topo.n_clusters == small_arch.n_clusters

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            ArchConfig(n_clusters=0)


class TestScaledValidation:
    """Validation behaviour of the ``ArchConfig.scaled(...)`` factory."""

    def test_rejects_non_positive_cluster_counts(self):
        with pytest.raises(ValueError, match="positive"):
            ArchConfig.scaled(n_clusters=0)
        with pytest.raises(ValueError, match="positive"):
            ArchConfig.scaled(n_clusters=-4)

    def test_rejects_invalid_crossbar_size(self):
        with pytest.raises(ValueError):
            ArchConfig.scaled(n_clusters=16, crossbar_size=0)
        with pytest.raises(ValueError):
            ArchConfig.scaled(n_clusters=16, crossbar_size=-128)

    def test_rejects_invalid_core_count(self):
        with pytest.raises(ValueError):
            ArchConfig.scaled(n_clusters=16, cores_per_cluster=0)

    def test_default_factors_cover_any_cluster_count(self):
        # The wrapper level must stretch to host whatever is requested.
        for n_clusters in (1, 3, 64, 65, 513, 2048):
            arch = ArchConfig.scaled(n_clusters=n_clusters)
            assert arch.n_clusters == n_clusters
            assert arch.interconnect.max_clusters >= n_clusters

    def test_explicit_factor_capacity_boundary(self):
        # 1*2*4*4*4 = 128 clusters: exactly at capacity fits, one more raises.
        factors = [1, 2, 4, 4, 4]
        arch = ArchConfig.scaled(n_clusters=128, quadrant_factors=factors)
        assert arch.interconnect.max_clusters == 128
        with pytest.raises(ValueError, match="host only"):
            ArchConfig.scaled(n_clusters=129, quadrant_factors=factors)

    def test_scaled_name_defaults_and_overrides(self):
        assert ArchConfig.scaled(n_clusters=32).name == "scaled-32x256"
        assert ArchConfig.scaled(n_clusters=32, name="custom").name == "custom"
